/// Performance microbenchmarks (google-benchmark) for the computational
/// kernels behind the figure harnesses: event-queue operations, a full
/// simulated day, the water-filling solver, the closed-form model and
/// trace parsing. These guard against regressions that would make the
/// two-week sweeps (Figs. 7-8) impractical.

#include <benchmark/benchmark.h>

#include <sstream>

#include "snipr/core/experiment.hpp"
#include "snipr/core/snip_rh.hpp"
#include "snipr/model/optimizer.hpp"
#include "snipr/sim/event_queue.hpp"
#include "snipr/trace/one_format.hpp"
#include "snipr/trace/synthetic.hpp"
#include "snipr/trace/trace_io.hpp"

namespace {

using namespace snipr;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.schedule(sim::TimePoint::zero() +
                     sim::Duration::microseconds(
                         static_cast<std::int64_t>((i * 7919) % n)),
                 [] {});
    }
    while (auto e = q.pop()) benchmark::DoNotOptimize(e->id);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          state.iterations());
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1000)->Arg(100000);

void BM_SimulatedDaySnipRh(benchmark::State& state) {
  const core::RoadsideScenario sc;
  for (auto _ : state) {
    core::SnipRh rh{sc.rush_mask, core::SnipRhConfig{}};
    core::ExperimentConfig cfg;
    cfg.epochs = 1;
    cfg.phi_max_s = sc.phi_max_large_s();
    cfg.sensing_rate_bps = sc.sensing_rate_for_target(48.0);
    cfg.seed = 1;
    const auto r = core::run_experiment(sc, rh, cfg);
    benchmark::DoNotOptimize(r.mean_zeta_s);
  }
}
BENCHMARK(BM_SimulatedDaySnipRh);

void BM_WaterFillingSolve(benchmark::State& state) {
  const auto slots = static_cast<std::size_t>(state.range(0));
  std::vector<double> intervals(slots);
  for (std::size_t s = 0; s < slots; ++s) {
    intervals[s] = 300.0 + 100.0 * static_cast<double>(s % 13);
  }
  const model::EpochModel m{
      contact::ArrivalProfile{sim::Duration::hours(24), intervals}, 2.0,
      model::SnipParams{}};
  for (auto _ : state) {
    const auto r = model::maximize_capacity(m, 500.0);
    benchmark::DoNotOptimize(r.zeta_s);
  }
}
BENCHMARK(BM_WaterFillingSolve)->Arg(24)->Arg(96);

void BM_UpsilonClosedForm(benchmark::State& state) {
  double duty = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::upsilon_fixed(duty, 2.0, 0.02));
    duty = duty < 0.5 ? duty * 1.01 : 0.001;
  }
}
BENCHMARK(BM_UpsilonClosedForm);

void BM_TraceRoundTrip(benchmark::State& state) {
  const core::RoadsideScenario sc;
  sim::Rng rng{1};
  const auto schedule =
      sc.make_schedule(7, contact::IntervalJitter::kNormalTenth, rng);
  std::ostringstream os;
  trace::write_csv(os, schedule.contacts());
  const std::string csv = os.str();
  for (auto _ : state) {
    std::istringstream is{csv};
    const auto contacts = trace::read_csv(is);
    benchmark::DoNotOptimize(contacts.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(csv.size()) *
                          state.iterations());
}
BENCHMARK(BM_TraceRoundTrip);

void BM_OneStreamingIngest(benchmark::State& state) {
  // A multi-megabyte ONE connectivity report parsed through the
  // streaming line-callback core. The exported peak_window counter is
  // the importer's real memory high-water mark (open + pending merge
  // contacts): it must track the number of concurrently-in-range peers,
  // NOT the event count — a regression back to materialise-then-sort
  // shows up here as peak_window == events.
  const auto epochs = static_cast<std::size_t>(state.range(0));
  trace::SyntheticTraceSpec spec;
  spec.epochs = epochs;
  spec.seed = 13;
  std::ostringstream os;
  trace::SyntheticTraceGenerator{spec}.write_one_report(os, "s0");
  const std::string report = os.str();

  trace::OneStreamStats last{};
  for (auto _ : state) {
    std::istringstream is{report};
    std::size_t contacts = 0;
    last = trace::stream_one_connectivity(
        is, "s0", [&](const contact::Contact&) { ++contacts; });
    benchmark::DoNotOptimize(contacts);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(report.size()) *
                          state.iterations());
  state.SetItemsProcessed(static_cast<std::int64_t>(last.conn_events) *
                          state.iterations());
  state.counters["events"] = static_cast<double>(last.conn_events);
  state.counters["peak_window"] = static_cast<double>(last.peak_window);
}
BENCHMARK(BM_OneStreamingIngest)->Arg(14)->Arg(140);

}  // namespace

BENCHMARK_MAIN();
