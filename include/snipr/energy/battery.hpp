#pragma once

#include "snipr/sim/time.hpp"

/// \file battery.hpp
/// Battery capacity and lifetime projection.
///
/// The paper's entire motivation is node life longevity: the probing
/// budget Φmax exists so a node "can assure a minimal lifetime" (Sec. V).
/// This helper turns the per-epoch Joule figures the experiment runner
/// reports into the headline number a deployment engineer wants — years
/// of operation on a given battery.

namespace snipr::energy {

class Battery {
 public:
  /// \param capacity_j usable energy in Joules (> 0).
  explicit Battery(double capacity_j);

  /// Two AA alkaline cells (~2600 mAh at 3 V, ~70% usable at mote loads):
  /// the TELOSB reference supply, ~19.6 kJ usable.
  [[nodiscard]] static Battery two_aa();

  /// From charge and voltage: capacity_j = mAh/1000 * 3600 * V * derating.
  [[nodiscard]] static Battery from_mah(double mah, double voltage_v,
                                        double usable_fraction = 0.7);

  [[nodiscard]] double capacity_j() const noexcept { return capacity_j_; }
  [[nodiscard]] double consumed_j() const noexcept { return consumed_j_; }
  [[nodiscard]] double remaining_j() const noexcept;
  [[nodiscard]] bool depleted() const noexcept {
    return remaining_j() <= 0.0;
  }

  /// Drain `joules` (>= 0). Over-draining clamps at depletion.
  void drain(double joules);

  /// Epochs of operation left at a steady per-epoch draw; +inf for zero
  /// draw, 0 when depleted.
  [[nodiscard]] double epochs_remaining(double joules_per_epoch) const;

  /// Projected lifetime in years at a steady per-epoch draw.
  [[nodiscard]] double lifetime_years(double joules_per_epoch,
                                      sim::Duration epoch) const;

 private:
  double capacity_j_;
  double consumed_j_{0.0};
};

}  // namespace snipr::energy
