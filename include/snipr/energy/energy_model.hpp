#pragma once

#include <array>
#include <cstddef>

#include "snipr/sim/time.hpp"

/// \file energy_model.hpp
/// Radio energy accounting.
///
/// The paper's primary overhead metric Φ is *radio-on time* (Table I), so
/// seconds are the first-class unit throughout the library. This model adds
/// the physical layer underneath: per-state supply currents for a
/// TELOSB-class mote (CC2420 radio), letting every experiment also report
/// Joules. Values default to the TELOSB/CC2420 datasheet operating points
/// the paper's COOJA emulation would have exercised.

namespace snipr::energy {

/// Radio operating states. `kOff` covers both radio sleep and MCU sleep —
/// the residual draw is lumped into one leakage current.
enum class RadioState : std::size_t {
  kOff = 0,
  kListen = 1,
  kTx = 2,
  kRx = 3,
};

inline constexpr std::size_t kRadioStateCount = 4;

[[nodiscard]] constexpr const char* to_string(RadioState s) noexcept {
  switch (s) {
    case RadioState::kOff:
      return "off";
    case RadioState::kListen:
      return "listen";
    case RadioState::kTx:
      return "tx";
    case RadioState::kRx:
      return "rx";
  }
  return "?";
}

/// Per-state supply currents and the supply voltage.
struct EnergyModel {
  double voltage_v{3.0};
  /// Currents in amperes, indexed by RadioState.
  std::array<double, kRadioStateCount> current_a{
      2.1e-6,   // off: MCU + radio sleep leakage
      18.8e-3,  // listen (CC2420 RX chain is on while listening)
      17.4e-3,  // tx at 0 dBm
      18.8e-3,  // rx
  };

  [[nodiscard]] double power_w(RadioState s) const noexcept {
    return voltage_v * current_a[static_cast<std::size_t>(s)];
  }

  /// Energy drawn by `span` spent in state `s`, in Joules.
  [[nodiscard]] double energy_j(RadioState s,
                                sim::Duration span) const noexcept {
    return power_w(s) * span.to_seconds();
  }

  /// TELOSB/CC2420 defaults (same as a default-constructed model).
  [[nodiscard]] static EnergyModel telosb() noexcept { return {}; }
};

/// Integrates time spent per radio state along a simulation run.
///
/// Drive it with state transitions; it accumulates the closed interval for
/// the state being left. `radio_on_time()` is Σ(listen+tx+rx) — the paper's
/// Φ when the meter tracks only probing activity.
class EnergyMeter {
 public:
  explicit EnergyMeter(EnergyModel model = EnergyModel::telosb(),
                       RadioState initial = RadioState::kOff,
                       sim::TimePoint at = sim::TimePoint::zero()) noexcept;

  /// Switch state at time `at` (must be >= the previous transition).
  void transition(RadioState to, sim::TimePoint at);

  /// Close the open interval at `at` without changing state (end of run /
  /// end of epoch snapshotting).
  void flush(sim::TimePoint at);

  /// Directly add `span` of state `s` without touching the open interval.
  /// Use when an activity's duration is known at scheduling time (e.g. a
  /// beacon of fixed airtime) — it avoids open intervals dated in the
  /// future, which would break snapshotting at epoch boundaries.
  void accumulate(RadioState s, sim::Duration span) noexcept;

  [[nodiscard]] RadioState state() const noexcept { return state_; }
  [[nodiscard]] sim::Duration time_in(RadioState s) const noexcept {
    return accumulated_[static_cast<std::size_t>(s)];
  }
  /// Total time with the radio powered (listen + tx + rx).
  [[nodiscard]] sim::Duration radio_on_time() const noexcept;
  /// Total accumulated energy in Joules under the model.
  [[nodiscard]] double energy_j() const noexcept;

  [[nodiscard]] const EnergyModel& model() const noexcept { return model_; }

  /// Zero the accumulators, keeping current state and model.
  void reset(sim::TimePoint at) noexcept;

 private:
  EnergyModel model_;
  RadioState state_;
  sim::TimePoint last_transition_;
  std::array<sim::Duration, kRadioStateCount> accumulated_{};
};

/// Per-epoch probing-energy budget (Φmax in the paper), tracked in
/// radio-on seconds. Schedulers consult it before activating SNIP
/// (condition 3 of SNIP-RH) and charge it for every probing wakeup.
class ProbingBudget {
 public:
  /// `limit` may be Duration::max() for an unbounded budget.
  explicit ProbingBudget(sim::Duration limit) noexcept;

  /// Charge `cost` against the epoch budget. Over-consumption is allowed
  /// (a wakeup in flight completes) and shows up as remaining() == 0.
  void consume(sim::Duration cost) noexcept;

  [[nodiscard]] sim::Duration limit() const noexcept { return limit_; }
  [[nodiscard]] sim::Duration used() const noexcept { return used_; }
  [[nodiscard]] sim::Duration remaining() const noexcept;
  /// True when at least `cost` is still available.
  [[nodiscard]] bool can_afford(sim::Duration cost) const noexcept;
  [[nodiscard]] bool exhausted() const noexcept {
    return remaining().is_zero();
  }

  /// New epoch: usage returns to zero.
  void reset() noexcept { used_ = sim::Duration::zero(); }

 private:
  sim::Duration limit_;
  sim::Duration used_{};
};

}  // namespace snipr::energy
