#pragma once

#include <optional>

#include "snipr/contact/contact.hpp"
#include "snipr/radio/link.hpp"

/// \file probe_math.hpp
/// Closed-form per-contact probing outcomes.
///
/// For a single contact and a fixed radio grid these are exact, so they
/// validate both the discrete-event simulator and eq. 1, and they provide
/// the mobile-node-initiated probing (MIP) baseline the SNIP paper [10]
/// compares against (Sec. III quotes a 2-10x capacity advantage for SNIP
/// at duty-cycles below 1%).

namespace snipr::radio {

/// SNIP: the sensor beacons at wakeups w_n = phase + n·Tcycle. The contact
/// is probed at the first wakeup whose beacon+reply exchange completes
/// inside the contact (and inside Ton). Returns the awareness time, or
/// nullopt when the contact is missed.
[[nodiscard]] std::optional<sim::TimePoint> snip_awareness_time(
    const contact::Contact& c, sim::Duration tcycle, sim::Duration ton,
    const LinkParams& link, sim::Duration phase = sim::Duration::zero());

/// MIP: the mobile beacons at arrival + k·period while in range; the
/// sensor listens over [phase + n·Tcycle, phase + n·Tcycle + Ton). The
/// contact is probed at the end of the first mobile beacon that lies
/// wholly inside a listen window. Returns awareness time or nullopt.
[[nodiscard]] std::optional<sim::TimePoint> mip_awareness_time(
    const contact::Contact& c, sim::Duration tcycle, sim::Duration ton,
    const LinkParams& link, sim::Duration mobile_beacon_period,
    sim::Duration phase = sim::Duration::zero());

/// Probed capacity Tprobed = departure − awareness for an awareness time,
/// zero for a miss.
[[nodiscard]] sim::Duration probed_capacity(
    const contact::Contact& c, std::optional<sim::TimePoint> awareness);

}  // namespace snipr::radio
