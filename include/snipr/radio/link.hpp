#pragma once

#include "snipr/sim/time.hpp"

/// \file link.hpp
/// Link-layer parameters shared by sensor and mobile nodes.
///
/// Values default to an IEEE 802.15.4 (Zigbee-compliant) radio as assumed
/// in Sec. II of the paper: 250 kbit/s PHY rate, ~1 ms airtime for a short
/// beacon/reply frame, and an effective data throughput of ~12.5 kB/s after
/// MAC overhead.

namespace snipr::radio {

struct LinkParams {
  /// Airtime of a probing beacon (sensor -> mobile).
  sim::Duration beacon_airtime{sim::Duration::milliseconds(1)};
  /// Airtime of the mobile node's reply (mobile -> sensor).
  sim::Duration reply_airtime{sim::Duration::milliseconds(1)};
  /// Effective payload throughput during data transfer, bytes/second.
  double data_rate_bps{12500.0};
  /// Independent loss probability applied to each beacon and each reply.
  /// Sparse deployments make loss unlikely (Sec. III); default 0.
  double frame_loss{0.0};
  /// Mobile-initiated probing (MIP baseline) only: the mobile node
  /// broadcasts a beacon this often while in range, starting at arrival.
  sim::Duration mobile_beacon_period{sim::Duration::milliseconds(100)};
};

}  // namespace snipr::radio
