#pragma once

#include <optional>

#include "snipr/contact/schedule.hpp"
#include "snipr/radio/link.hpp"
#include "snipr/sim/rng.hpp"

/// \file channel.hpp
/// Contact-driven radio channel.
///
/// Geometry is abstracted by the contact schedule (Sec. II reference
/// model): a frame between the sensor node and the mobile node can be
/// delivered iff a contact covers the transmission. Frame loss is an
/// independent Bernoulli draw per frame.

namespace snipr::radio {

class Channel {
 public:
  Channel(contact::ContactSchedule schedule, LinkParams link,
          sim::Rng rng) noexcept;

  [[nodiscard]] const contact::ContactSchedule& schedule() const noexcept {
    return schedule_;
  }
  [[nodiscard]] const LinkParams& link() const noexcept { return link_; }

  /// Contact covering `t`, if any.
  [[nodiscard]] std::optional<contact::Contact> active_contact(
      sim::TimePoint t) const {
    return schedule_.active_at(t);
  }

  /// True when a frame transmitted over [start, start+airtime) is
  /// delivered: the receiver must be in range for the whole airtime and
  /// the Bernoulli loss draw must pass. Mutates the RNG (one draw per call
  /// made while in range), so call exactly once per frame.
  [[nodiscard]] bool try_deliver(sim::TimePoint start, sim::Duration airtime);

 private:
  contact::ContactSchedule schedule_;
  LinkParams link_;
  sim::Rng rng_;
};

}  // namespace snipr::radio
