#pragma once

#include <memory>
#include <optional>

#include "snipr/contact/schedule.hpp"
#include "snipr/radio/link.hpp"
#include "snipr/sim/rng.hpp"

/// \file channel.hpp
/// Contact-driven radio channel.
///
/// Geometry is abstracted by the contact schedule (Sec. II reference
/// model): a frame between the sensor node and the mobile node can be
/// delivered iff a contact covers the transmission. Frame loss is an
/// independent Bernoulli draw per frame.
///
/// The schedule is held by shared_ptr-to-const so one materialised
/// schedule can back many channels (BatchRunner builds each distinct
/// (scenario, epochs, jitter, seed) schedule once per grid); per-channel
/// mutable state is only the RNG and the query cursor.
///
/// Queries are served through a monotone cursor: simulation time only
/// moves forward, so instead of a fresh O(log n) binary search per
/// wakeup the channel remembers the first contact that has not yet
/// departed and advances it linearly — amortised O(1) across a run. A
/// backward query (replay, tests, the post-probe `active_contact`
/// re-read) falls back to a binary search that repositions the cursor,
/// so any query sequence returns exactly what ContactSchedule's own
/// binary-search lookups would.

namespace snipr::radio {

class Channel {
 public:
  Channel(contact::ContactSchedule schedule, LinkParams link, sim::Rng rng);
  Channel(std::shared_ptr<const contact::ContactSchedule> schedule,
          LinkParams link, sim::Rng rng);

  [[nodiscard]] const contact::ContactSchedule& schedule() const noexcept {
    return *schedule_;
  }
  [[nodiscard]] const LinkParams& link() const noexcept { return link_; }

  /// Contact covering `t`, if any.
  [[nodiscard]] std::optional<contact::Contact> active_contact(
      sim::TimePoint t) const;

  /// First contact with arrival >= t (cursor-accelerated counterpart of
  /// ContactSchedule::next_arrival_at_or_after).
  [[nodiscard]] std::optional<contact::Contact> next_arrival_at_or_after(
      sim::TimePoint t) const;

  /// True when a frame transmitted over [start, start+airtime) is
  /// delivered: the receiver must be in range for the whole airtime and
  /// the Bernoulli loss draw must pass. Mutates the RNG (one draw per call
  /// made while in range), so call exactly once per frame.
  [[nodiscard]] bool try_deliver(sim::TimePoint start, sim::Duration airtime);

 private:
  /// Advance (or binary-search back) the cursor to the first contact
  /// with departure() > t, the only candidate able to cover t or any
  /// later instant. Returns the cursor index.
  std::size_t position_cursor(sim::TimePoint t) const;

  std::shared_ptr<const contact::ContactSchedule> schedule_;
  LinkParams link_;
  sim::Rng rng_;
  /// Invariant: every contact before cursor_ has departure() <=
  /// cursor_time_ (initially vacuous), so forward queries never look
  /// behind it.
  mutable std::size_t cursor_{0};
  mutable sim::TimePoint cursor_time_{sim::TimePoint::zero()};
};

}  // namespace snipr::radio
