#pragma once

#include <optional>
#include <vector>

#include "snipr/node/scheduler.hpp"
#include "snipr/sim/time.hpp"

/// \file snip_opt.hpp
/// SNIP-OPT: executes a precomputed per-slot duty plan (Sec. V).
///
/// The paper's optimization-based mechanism assumes the exact contact
/// arrival process is known offline; the two-step water-filling solver
/// (snipr::model::maximize_capacity / minimize_overhead) produces the
/// per-slot duties and this scheduler simply executes them, slot by slot,
/// stopping when the epoch's energy budget runs out.

namespace snipr::core {

class SnipOpt final : public node::Scheduler {
 public:
  /// \param duties   one duty in [0, 1] per slot (from EpochModel::snip_opt).
  /// \param epoch    epoch length; must divide evenly into duties.size().
  /// \param ton      SNIP's per-wakeup radio-on time.
  SnipOpt(std::vector<double> duties, sim::Duration epoch, sim::Duration ton);

  [[nodiscard]] node::SchedulerDecision on_wakeup(
      const node::SensorContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "SNIP-OPT"; }

  [[nodiscard]] const std::vector<double>& duties() const noexcept {
    return duties_;
  }

 private:
  [[nodiscard]] std::size_t slot_of(sim::TimePoint t) const noexcept;
  /// Start of the next slot with a positive duty, at or after `t`.
  [[nodiscard]] std::optional<sim::TimePoint> next_active_slot(
      sim::TimePoint t) const noexcept;

  std::vector<double> duties_;
  sim::Duration epoch_;
  sim::Duration ton_;
  sim::Duration slot_len_;
};

}  // namespace snipr::core
