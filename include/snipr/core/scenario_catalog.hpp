#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "snipr/core/batch_runner.hpp"
#include "snipr/core/scenario.hpp"
#include "snipr/deploy/fleet.hpp"
#include "snipr/trace/trace_catalog.hpp"

/// \file scenario_catalog.hpp
/// The named scenario library.
///
/// The paper evaluates one environment (the Sec. VII-A road-side network);
/// the catalog generalises that into a registry of named, documented
/// workloads — the paper's Fig. 5-8 configurations plus commuter,
/// night-shift, convoy, rural, urban and adversarial contact processes,
/// and one environment estimated from a ONE-simulator connectivity trace
/// through `trace::read_one_connectivity`. Every driver that used to
/// hand-roll a `RoadsideScenario` (snipr_cli, the fig benches, the golden
/// runner) now resolves an entry by name, so a scenario tweak lands in one
/// place and every consumer — including the golden regression corpus under
/// tests/golden/ — sees it.

namespace snipr::core {

/// One named scenario: the environment plus its published sweep defaults.
struct CatalogEntry {
  std::string name;         ///< stable CLI / JSON identifier
  std::string description;  ///< one line, shown by --list-scenarios
  RoadsideScenario scenario;
  /// Default per-epoch probing budget Φmax for this environment.
  double phi_max_s{86.4};
  /// Representative ζtarget sweep points (golden corpus grid).
  std::vector<double> zeta_targets_s{16.0, 56.0};
  /// Set on fleet entries (snipr_cli --fleet, the FleetEngine golden
  /// corpus): the multi-node deployment this environment describes.
  /// `scenario` then holds the per-node environment (mask, Ton, link)
  /// that every fleet node runs. Null on single-node entries.
  std::shared_ptr<const deploy::FleetSpec> fleet{};

  [[nodiscard]] bool is_fleet() const noexcept { return fleet != nullptr; }
};

/// Immutable registry of every named scenario, built once per process.
class ScenarioCatalog {
 public:
  /// The process-wide catalog.
  [[nodiscard]] static const ScenarioCatalog& instance();

  [[nodiscard]] const std::vector<CatalogEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Entry by name; nullptr when unknown.
  [[nodiscard]] const CatalogEntry* find(std::string_view name) const;

  /// Entry by name; throws std::out_of_range whose message lists every
  /// valid name (so CLI users see the menu, not a silent default).
  [[nodiscard]] const CatalogEntry& at(std::string_view name) const;

  /// All names, in registry order.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  ScenarioCatalog();
  std::vector<CatalogEntry> entries_;
};

/// The canonical sweep over one entry: all four strategies × the entry's
/// ζtarget points × its default budget × seeds 1..`seeds`, labelled with
/// the entry name. This is the grid the golden corpus pins down.
[[nodiscard]] SweepSpec catalog_sweep(const CatalogEntry& entry,
                                      std::size_t seeds, std::size_t epochs);

/// The one trace -> replay-environment rule, shared by the catalog's
/// replay entries and `snipr_cli --trace`: estimate the arrival profile
/// from `contacts` on the entry's slot grid, mark the top `rush_slots`
/// busiest slots as rush hours, and attach the contacts for exact replay
/// (tiled at the entry's epoch, with `replay_jitter_s` day-to-day jitter
/// under the jittered environment). Throws std::invalid_argument on an
/// empty contact list.
[[nodiscard]] RoadsideScenario make_replay_scenario(
    const trace::TraceEntry& entry,
    std::shared_ptr<const std::vector<contact::Contact>> contacts,
    std::size_t rush_slots, double replay_jitter_s);

}  // namespace snipr::core
