#pragma once

#include "snipr/node/scheduler.hpp"

/// \file snip_at.hpp
/// SNIP-AT: the All-Time scheduling baseline (Sec. IV of the paper).
///
/// SNIP runs in every slot at one fixed duty-cycle d0, "well selected so
/// that the probed contact capacity is just enough to upload its sensed
/// data" — in the paper's simulations d0 is computed offline from the
/// environment (EpochModel::snip_at) and baked in. The only runtime gate
/// is the per-epoch energy budget: probing halts once Φmax is spent.

namespace snipr::core {

class SnipAt final : public node::Scheduler {
 public:
  /// \param duty         d0 in (0, 1]; use EpochModel::snip_at to size it.
  /// \param ton          SNIP's per-wakeup radio-on time.
  /// \param idle_check   CPU re-check period once the budget is exhausted.
  explicit SnipAt(double duty, sim::Duration ton,
                  sim::Duration idle_check = sim::Duration::minutes(10));

  [[nodiscard]] node::SchedulerDecision on_wakeup(
      const node::SensorContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "SNIP-AT"; }

  [[nodiscard]] double duty() const noexcept { return duty_; }
  [[nodiscard]] sim::Duration cycle() const noexcept { return cycle_; }

 private:
  double duty_;
  sim::Duration ton_;
  sim::Duration cycle_;
  sim::Duration idle_check_;
};

}  // namespace snipr::core
