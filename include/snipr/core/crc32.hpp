#pragma once

#include <cstdint>
#include <string_view>

/// \file crc32.hpp
/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over a byte
/// range. Used to frame streaming-fleet checkpoints so a torn write,
/// truncation or bit flip is detected and rejected instead of silently
/// parsed — and by the checkpoint fuzz corruptor to prove exactly that.
/// Checkpoints are small (one accumulator, not per-node state), so the
/// branch-free bitwise form is plenty and costs no lookup table.

namespace snipr::core {

[[nodiscard]] constexpr std::uint32_t crc32(std::string_view data) noexcept {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char byte : data) {
    crc ^= static_cast<unsigned char>(byte);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return crc ^ 0xFFFFFFFFu;
}

static_assert(crc32("123456789") == 0xCBF43926u,
              "crc32 must match the IEEE 802.3 check value");

}  // namespace snipr::core
