#pragma once

#include <cstddef>
#include <functional>

/// \file thread_pool.hpp
/// Reusable fork-join worker pool.
///
/// Extracted from `core::BatchRunner` so every parallel engine (the batch
/// grid, the deployment `FleetEngine`, future sweeps) shares one
/// work-distribution strategy instead of hand-rolling its own: a shared
/// atomic index hands item `i` to whichever worker gets there first, so
/// assignment order can never influence output order — each item owns its
/// own result slot and its own deterministic state. The first exception
/// thrown by any item is rethrown on the caller's thread after all
/// workers join.

namespace snipr::core {

class ThreadPool {
 public:
  /// \param threads worker count; 0 means hardware_threads().
  explicit ThreadPool(std::size_t threads = 0);

  /// Workers this pool will spawn (never 0).
  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

  /// Invoke `body(i)` for every i in [0, count). Bodies run concurrently
  /// (at most min(threads(), count) at a time) and must not share mutable
  /// state except through their own index. Blocks until every body
  /// returned; rethrows the first exception any body threw.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body) const;

  /// std::thread::hardware_concurrency(), never 0.
  [[nodiscard]] static std::size_t hardware_threads() noexcept;

 private:
  std::size_t threads_;
};

}  // namespace snipr::core
