#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "snipr/core/exploration_policy.hpp"
#include "snipr/core/scenario.hpp"
#include "snipr/node/scheduler.hpp"

/// \file strategy.hpp
/// The probing strategies of the paper as a closed enum, plus the one
/// canonical way to instantiate a scheduler for a strategy.
///
/// Before this existed, `snipr_cli`, `figure_helpers.hpp` and every bench
/// driver hand-rolled the same plan-then-construct dance (fluid model ->
/// duty plan -> SnipAt/SnipOpt/SnipRh/AdaptiveSnipRh). They now all call
/// `make_scheduler`, so a change to how a mechanism is parameterised lands
/// in one place.

namespace snipr::core {

enum class Strategy {
  kSnipAt,    ///< uniform duty (Sec. V-A baseline)
  kSnipOpt,   ///< per-slot optimal duties from the fluid model (Sec. V-B)
  kSnipRh,    ///< rush-hour gated probing, the paper's contribution
  kAdaptive,  ///< SNIP-RH with online rush-hour learning (Sec. VII-B)
};

/// All strategies, in canonical (paper) order.
[[nodiscard]] constexpr std::array<Strategy, 4> all_strategies() {
  return {Strategy::kSnipAt, Strategy::kSnipOpt, Strategy::kSnipRh,
          Strategy::kAdaptive};
}

/// Stable identifier used in JSON output and CLI flags ("at", "opt",
/// "rh", "adaptive").
[[nodiscard]] std::string_view strategy_id(Strategy strategy) noexcept;

/// Human-readable name ("SNIP-AT", ...).
[[nodiscard]] std::string_view strategy_name(Strategy strategy) noexcept;

/// Inverse of strategy_id; empty optional on unknown input.
[[nodiscard]] std::optional<Strategy> parse_strategy(
    std::string_view id) noexcept;

/// Build the scheduler implementing `strategy` for one experiment point.
///
/// AT and OPT are planned offline against the scenario's fluid model for
/// the given ζtarget and Φmax (exactly the paper's methodology for
/// Figs. 7-8); RH and adaptive take their duty online from the scenario's
/// Ton and contact-length prior and ignore the planning inputs.
/// `exploration` applies to kAdaptive only (how the learner keeps sampling
/// slots its adopted mask would otherwise censor); other strategies ignore
/// it, and the default kNone keeps the legacy behaviour.
[[nodiscard]] std::unique_ptr<node::Scheduler> make_scheduler(
    const RoadsideScenario& scenario, Strategy strategy, double zeta_target_s,
    double phi_max_s, const ExplorationConfig& exploration = {});

}  // namespace snipr::core
