#pragma once

#include <initializer_list>
#include <optional>
#include <vector>

#include "snipr/contact/profile.hpp"
#include "snipr/sim/time.hpp"

/// \file rush_hour_mask.hpp
/// The Rush-Hours bitmap of SNIP-RH (Sec. VI-A of the paper).
///
/// An epoch is divided into N equal time-slots; each is marked "1" (rush
/// hour: SNIP may be activated) or "0". Engineers can configure the mask
/// directly, or it can be learned from probed contacts (RushHourLearner).

namespace snipr::core {

class RushHourMask {
 public:
  /// All-zero mask over `slot_count` slots of epoch `epoch`.
  RushHourMask(sim::Duration epoch, std::size_t slot_count);
  /// Explicit bitmap.
  RushHourMask(sim::Duration epoch, std::vector<bool> slots);

  /// 24-slot diurnal mask with the listed hours marked; the paper's
  /// road-side scenario is from_hours({7, 8, 17, 18}).
  [[nodiscard]] static RushHourMask from_hours(
      std::initializer_list<std::size_t> hours);

  /// Mask selecting the first `k` slots of `ordered` (e.g. slots sorted by
  /// observed contact count).
  [[nodiscard]] static RushHourMask top_k(
      sim::Duration epoch, std::size_t slot_count,
      const std::vector<contact::SlotIndex>& ordered, std::size_t k);

  [[nodiscard]] sim::Duration epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::size_t slot_count() const noexcept {
    return slots_.size();
  }
  [[nodiscard]] sim::Duration slot_length() const noexcept {
    return epoch_ / static_cast<std::int64_t>(slots_.size());
  }
  [[nodiscard]] bool is_rush_slot(contact::SlotIndex s) const;
  /// True when `t` falls in a rush slot (epoch wraps).
  [[nodiscard]] bool is_rush(sim::TimePoint t) const noexcept;
  /// Start of the next rush slot at or after `t`; `t` itself when already
  /// inside one. Returns nullopt for an all-zero mask.
  [[nodiscard]] std::optional<sim::TimePoint> next_rush_start(
      sim::TimePoint t) const noexcept;

  /// Number of slots marked "1".
  [[nodiscard]] std::size_t rush_slot_count() const noexcept;
  /// Total rush time per epoch (Trh).
  [[nodiscard]] sim::Duration rush_time_per_epoch() const noexcept;

  void set(contact::SlotIndex s, bool rush);
  [[nodiscard]] const std::vector<bool>& bits() const noexcept {
    return slots_;
  }

 private:
  sim::Duration epoch_;
  std::vector<bool> slots_;
};

}  // namespace snipr::core
