#pragma once

#include "snipr/core/rush_hour_mask.hpp"
#include "snipr/node/scheduler.hpp"
#include "snipr/stats/ewma.hpp"

/// \file snip_rh.hpp
/// SNIP-RH: the paper's contribution (Sec. VI).
///
/// SNIP is activated only when all three conditions hold:
///   1. the current time-slot is marked as a Rush Hour;
///   2. the buffer holds at least the learned mean amount of data uploaded
///      per probed contact (so probed capacity is never wasted);
///   3. the epoch's probing-energy budget Φmax still affords a wakeup.
///
/// The duty-cycle is d_rh = Ton / T̄contact where T̄contact is an EWMA of
/// the contact length with a small weight on new samples (Sec. VI-C) —
/// the knee of the SNIP capacity curve, i.e. the largest duty that still
/// probes at the minimum per-unit energy cost ρ.
///
/// A sensor node can only time a contact from the moment it probes it, so
/// the raw observation is Tprobed, which under-estimates Tcontact by the
/// expected pre-awareness gap. With head correction (default) the sample
/// is Tprobed + Tcycle/2, an unbiased reconstruction of Tcontact when
/// Tcycle < Tcontact; without it the estimator settles at ~2/3·Tcontact
/// and the duty lands slightly above the knee (the paper notes ρ is not
/// very sensitive there). The ablation bench A3 quantifies both choices.

namespace snipr::core {

struct SnipRhConfig {
  /// SNIP's per-wakeup radio-on time (Ton).
  sim::Duration ton{sim::Duration::milliseconds(20)};
  /// Prior estimate of the mean contact length, seconds (engineers'
  /// deployment-time guess; refined online).
  double initial_tcontact_s{2.0};
  /// EWMA weight for T̄contact ("a small weight", Sec. VI-C).
  double length_ewma_weight{0.1};
  /// EWMA weight for the mean upload per probed contact (Sec. VI-B).
  double upload_ewma_weight{0.1};
  /// Condition 2 floor: probe only when at least this many bytes wait,
  /// even before any upload has been observed.
  double min_data_bytes{1.0};
  /// Reconstruct Tcontact from Tprobed by adding Tcycle/2 (see above).
  bool head_correction{true};
  /// Learn from observations truncated by buffer drain (default: skip,
  /// they under-estimate the contact length).
  bool learn_truncated{false};
  /// Floor for CPU sleep intervals between condition checks.
  sim::Duration min_sleep{sim::Duration::seconds(1)};
};

class SnipRh final : public node::Scheduler {
 public:
  SnipRh(RushHourMask mask, SnipRhConfig config);

  [[nodiscard]] node::SchedulerDecision on_wakeup(
      const node::SensorContext& ctx) override;
  void on_contact_probed(const node::ProbedContactObservation& obs) override;
  [[nodiscard]] std::string name() const override { return "SNIP-RH"; }

  /// Current contact-length estimate T̄contact (seconds).
  [[nodiscard]] double tcontact_estimate_s() const noexcept;
  /// Current duty d_rh = Ton / T̄contact, clamped to (0, 1].
  [[nodiscard]] double duty() const noexcept;
  /// Condition-2 threshold: learned mean upload per contact (bytes).
  [[nodiscard]] double upload_threshold_bytes() const noexcept;
  [[nodiscard]] const RushHourMask& mask() const noexcept { return mask_; }
  /// Replace the mask (used by adaptive variants tracking seasonal shift).
  void set_mask(RushHourMask mask) noexcept { mask_ = std::move(mask); }

  /// Crash/recovery seam. The checkpoint carries the mask bits and both
  /// EWMAs; reset() clears the EWMAs back to their priors but keeps the
  /// mask — for standalone SNIP-RH the mask is provisioned configuration
  /// (it lives in flash), not learned state. AdaptiveSnipRh wipes the
  /// mask itself when it reboots its inner SnipRh.
  [[nodiscard]] std::string checkpoint() const override;
  bool restore(std::string_view blob) override;
  void reset() override;
  [[nodiscard]] std::vector<bool> rush_mask_bits() const override {
    return mask_.bits();
  }

 private:
  RushHourMask mask_;
  SnipRhConfig config_;
  stats::Ewma tcontact_s_;
  stats::Ewma upload_bytes_;
};

}  // namespace snipr::core
