#pragma once

#include <array>
#include <memory>

#include "snipr/contact/process.hpp"
#include "snipr/contact/profile.hpp"
#include "snipr/contact/schedule.hpp"
#include "snipr/contact/trace_replay.hpp"
#include "snipr/core/rush_hour_mask.hpp"
#include "snipr/model/epoch_model.hpp"
#include "snipr/radio/link.hpp"

/// \file scenario.hpp
/// The paper's evaluation scenario (Sec. VII-A) as a reusable bundle.
///
/// Defaults: Tepoch = 24 h, N = 24 slots, Rush Hours 7:00-9:00 and
/// 17:00-19:00, Tinterval = 300 s in rush hours / 1800 s elsewhere,
/// Tcontact = 2 s, Ton = 20 ms (see DESIGN.md for the calibration),
/// Φmax ∈ {Tepoch/1000, Tepoch/100} and ζtarget ∈ {16..56} s as sweep
/// points. All fields are plain data and freely overridable.

namespace snipr::core {

struct RoadsideScenario {
  contact::ArrivalProfile profile{contact::ArrivalProfile::roadside()};
  RushHourMask rush_mask{RushHourMask::from_hours({7, 8, 17, 18})};
  double tcontact_s{2.0};
  model::SnipParams snip{};  // Ton = 20 ms
  radio::LinkParams link{};

  /// Optional recorded workload. When set, make_schedule replays these
  /// contacts — tiled with period = profile.epoch() so the trace loops
  /// at its natural day boundary — instead of sampling the generative
  /// profile; `profile` then only describes the slot layout and the
  /// planners' view of the environment (typically estimated from the
  /// same trace via trace::TraceSlotStats).
  std::shared_ptr<const std::vector<contact::Contact>> replay{};
  /// Per-contact arrival jitter (seconds) applied when replaying under
  /// kNormalTenth; kNone replays the trace exactly. Models day-to-day
  /// variation across trace repetitions.
  double replay_jitter_s{0.0};

  /// Published sweep points.
  [[nodiscard]] static constexpr std::array<double, 6> zeta_targets_s() {
    return {16.0, 24.0, 32.0, 40.0, 48.0, 56.0};
  }
  [[nodiscard]] double phi_max_small_s() const {
    return profile.epoch().to_seconds() / 1000.0;
  }
  [[nodiscard]] double phi_max_large_s() const {
    return profile.epoch().to_seconds() / 100.0;
  }

  /// Fluid analysis model over this environment.
  [[nodiscard]] model::EpochModel make_model() const {
    return model::EpochModel{profile, tcontact_s, snip};
  }

  /// Sensing rate (bytes/s) that generates, per epoch, exactly the data
  /// volume one ζtarget of link time can carry (Sec. VII-A.2: "sensed data
  /// is generated with a constant rate derived from ζtarget").
  [[nodiscard]] double sensing_rate_for_target(double zeta_target_s) const {
    return zeta_target_s * link.data_rate_bps / profile.epoch().to_seconds();
  }

  /// Materialise a contact schedule over `epochs` epochs. kNone jitter is
  /// the paper's analysis environment; kNormalTenth its simulation one.
  [[nodiscard]] contact::ContactSchedule make_schedule(
      std::size_t epochs, contact::IntervalJitter jitter,
      sim::Rng& rng) const {
    const sim::Duration horizon =
        profile.epoch() * static_cast<std::int64_t>(epochs);
    if (replay != nullptr) {
      contact::TraceReplayConfig config;
      config.period = profile.epoch();
      config.jitter_stddev_s =
          jitter == contact::IntervalJitter::kNone ? 0.0 : replay_jitter_s;
      contact::TraceReplayProcess process{*replay, config};
      return contact::ContactSchedule{
          contact::materialize(process, horizon, rng)};
    }
    std::unique_ptr<sim::Distribution> length;
    if (jitter == contact::IntervalJitter::kNone) {
      length = std::make_unique<sim::FixedDistribution>(tcontact_s);
    } else {
      length = std::make_unique<sim::TruncatedNormalDistribution>(
          tcontact_s, tcontact_s / 10.0);
    }
    contact::IntervalContactProcess process{profile, std::move(length),
                                            jitter};
    return contact::ContactSchedule{
        contact::materialize(process, horizon, rng)};
  }
};

}  // namespace snipr::core
