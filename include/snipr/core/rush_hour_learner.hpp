#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "snipr/core/rush_hour_mask.hpp"
#include "snipr/sim/time.hpp"

/// \file rush_hour_learner.hpp
/// Online identification of Rush Hours (Sec. VII-B discussion).
///
/// The paper observes that a node "only needs to learn the order of these
/// time-slots' contact capacity", so a short low-duty SNIP-AT phase with
/// per-slot probe counting suffices. This learner accumulates per-slot
/// scores — EWMA-smoothed across epochs so a slowly shifting mobility
/// pattern (seasonal rush-hour drift) is tracked — and emits a mask of the
/// top-k slots.
///
/// **Censoring contract.** Everything fed in here must be something the
/// node could actually observe at its duty cycle: record_probe() takes
/// *detected* contacts (at their detection instant), record_effort() the
/// radio-on time actually spent. Ground-truth arrival lists never enter —
/// a learner fed arrivals it slept through would look clairvoyant in
/// simulation and fall apart on hardware (the snooze paper's trap,
/// arXiv:1709.09551). tools/snipr_lint.py (`censored-feedback`) enforces
/// this at the token level.
///
/// Scoring has two modes:
///  - Count mode (no effort recorded): a slot's epoch sample is its raw
///    probe count. Valid while probing effort is uniform across slots
///    (pure SNIP-AT learning).
///  - Effort-normalised mode (record_effort() called): the sample is
///    probes per radio-on second spent in the slot — an unbiased contact-
///    rate estimate even when effort is highly non-uniform, as it is once
///    SNIP-RH exploits a mask (knee duty inside, tiny tracker duty
///    outside). Without this correction an adopted mask self-reinforces
///    and a shifted pattern is never relearned. Slots with zero effort in
///    an epoch carry no information and keep their score. Effort mode is
///    sticky: once any effort has been recorded, a later epoch with zero
///    effort *and* zero counts is a zero-information epoch (radio never
///    on) and holds every score — it must not fall back to count mode and
///    EWMA every slot toward a 0.0 the node never observed.
///
/// Initialisation is tracked per slot: a slot's first real sample *seeds*
/// its score outright, and only later samples are EWMA-blended. A global
/// initialised flag would mark effort-mode slots that were skipped in the
/// first epoch as initialised too, so their eventual first sample in a
/// later epoch would be blended against a bogus 0.0 prior — persistently
/// underestimating rarely-probed slots (exactly the ones outside an
/// adopted mask) and biasing the learned ranking toward the incumbent.

namespace snipr::core {

class RushHourLearner {
 public:
  /// \param epoch          epoch length (Tepoch).
  /// \param slot_count     number of slots N.
  /// \param rush_slots     how many slots the emitted mask marks as rush.
  /// \param epoch_weight   EWMA weight when folding an epoch's samples
  ///                       into the long-term per-slot score.
  /// \param effort_prior_s additive smoothing for effort-normalised
  ///                       samples: rate = count/(effort + prior). Damps
  ///                       the explosive estimate of a lucky probe under
  ///                       near-zero effort; irrelevant in count mode.
  RushHourLearner(sim::Duration epoch, std::size_t slot_count,
                  std::size_t rush_slots, double epoch_weight = 0.3,
                  double effort_prior_s = 2.0);

  /// Record one *detected* contact at its detection instant `t`. Call at
  /// detection time, not transfer completion: a transfer that straddles
  /// finish_epoch() would otherwise push the count into the epoch after
  /// the one whose effort paid for it.
  void record_probe(sim::TimePoint t);

  /// Record probing effort (radio-on time) spent at time `t`. Calling this
  /// at least once switches the learner permanently to effort-normalised
  /// scoring.
  void record_effort(sim::TimePoint t, sim::Duration radio_on);

  /// Fold the epoch's samples into the long-term scores. Call at each
  /// epoch boundary.
  void finish_epoch();

  /// Epochs folded in so far.
  [[nodiscard]] std::size_t epochs_observed() const noexcept {
    return epochs_;
  }
  [[nodiscard]] sim::Duration epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::size_t slot_count() const noexcept {
    return scores_.size();
  }
  /// Long-term per-slot scores (EWMA of per-epoch probe counts).
  [[nodiscard]] const std::vector<double>& scores() const noexcept {
    return scores_;
  }
  /// Cumulative radio-on seconds recorded per slot since construction —
  /// the exploration policies' notion of how well a slot is sampled.
  [[nodiscard]] const std::vector<double>& total_effort_s() const noexcept {
    return total_effort_s_;
  }
  /// Per slot: epochs that contributed a real sample to its score.
  [[nodiscard]] const std::vector<std::uint32_t>& slot_samples()
      const noexcept {
    return slot_samples_;
  }
  /// Per slot: has the score been seeded by at least one real sample?
  /// (std::vector<char>, not <bool>, for addressable flags.)
  [[nodiscard]] const std::vector<char>& slot_seeded() const noexcept {
    return slot_seeded_;
  }

  /// Slots ordered by decreasing score. Ties break sampled-before-
  /// unsampled, then by index: a slot with zero recorded effort carries no
  /// evidence and must never outrank a slot that was actually probed.
  [[nodiscard]] std::vector<contact::SlotIndex> slots_by_score() const;
  /// The same ranking rule over caller-supplied scores (exploration
  /// policies rank optimistic score views with identical tie-breaking).
  [[nodiscard]] static std::vector<contact::SlotIndex> rank_slots(
      const std::vector<double>& scores, const std::vector<char>& seeded);
  /// Mask marking the top `rush_slots` slots.
  [[nodiscard]] RushHourMask mask() const;

  /// Complete mutable state — everything a crash wipes and a checkpoint
  /// must carry (scores, in-flight epoch samples, effort totals, the
  /// UCB sample counts, per-slot seeding, the sticky effort mode).
  /// snapshot() → restore() round-trips bit-identically.
  struct Snapshot {
    std::vector<double> scores;
    std::vector<double> current_counts;
    std::vector<double> current_effort_s;
    std::vector<double> total_effort_s;
    std::vector<std::uint32_t> slot_samples;
    std::vector<char> slot_seeded;
    bool effort_mode{false};
    std::size_t epochs{0};
  };
  [[nodiscard]] Snapshot snapshot() const;
  /// Restore state captured by snapshot() on a learner configured with
  /// the same slot count. Throws std::invalid_argument on a shape
  /// mismatch (a checkpoint from a differently-configured learner).
  void restore(const Snapshot& state);
  /// Crash amnesia: discard every observation back to the
  /// freshly-constructed state (configuration survives).
  void reset() noexcept;

 private:
  [[nodiscard]] std::size_t slot_index(sim::TimePoint t) const noexcept;

  sim::Duration epoch_;
  std::size_t rush_slots_;
  double epoch_weight_;
  double effort_prior_s_;
  std::vector<double> scores_;
  std::vector<double> current_counts_;
  std::vector<double> current_effort_s_;
  std::vector<double> total_effort_s_;
  std::vector<std::uint32_t> slot_samples_;
  std::vector<char> slot_seeded_;
  bool effort_mode_{false};  ///< sticky: any record_effort() ever seen
  std::size_t epochs_{0};
};

}  // namespace snipr::core
