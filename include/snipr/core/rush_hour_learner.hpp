#pragma once

#include <cstddef>
#include <vector>

#include "snipr/core/rush_hour_mask.hpp"
#include "snipr/sim/time.hpp"

/// \file rush_hour_learner.hpp
/// Online identification of Rush Hours (Sec. VII-B discussion).
///
/// The paper observes that a node "only needs to learn the order of these
/// time-slots' contact capacity", so a short low-duty SNIP-AT phase with
/// per-slot probe counting suffices. This learner accumulates per-slot
/// scores — EWMA-smoothed across epochs so a slowly shifting mobility
/// pattern (seasonal rush-hour drift) is tracked — and emits a mask of the
/// top-k slots.
///
/// Scoring has two modes:
///  - Count mode (no effort recorded): a slot's epoch sample is its raw
///    probe count. Valid while probing effort is uniform across slots
///    (pure SNIP-AT learning).
///  - Effort-normalised mode (record_effort() called): the sample is
///    probes per radio-on second spent in the slot — an unbiased contact-
///    rate estimate even when effort is highly non-uniform, as it is once
///    SNIP-RH exploits a mask (knee duty inside, tiny tracker duty
///    outside). Without this correction an adopted mask self-reinforces
///    and a shifted pattern is never relearned. Slots with zero effort in
///    an epoch carry no information and keep their score.
///
/// Initialisation is tracked per slot: a slot's first real sample *seeds*
/// its score outright, and only later samples are EWMA-blended. A global
/// initialised flag would mark effort-mode slots that were skipped in the
/// first epoch as initialised too, so their eventual first sample in a
/// later epoch would be blended against a bogus 0.0 prior — persistently
/// underestimating rarely-probed slots (exactly the ones outside an
/// adopted mask) and biasing the learned ranking toward the incumbent.

namespace snipr::core {

class RushHourLearner {
 public:
  /// \param epoch          epoch length (Tepoch).
  /// \param slot_count     number of slots N.
  /// \param rush_slots     how many slots the emitted mask marks as rush.
  /// \param epoch_weight   EWMA weight when folding an epoch's samples
  ///                       into the long-term per-slot score.
  /// \param effort_prior_s additive smoothing for effort-normalised
  ///                       samples: rate = count/(effort + prior). Damps
  ///                       the explosive estimate of a lucky probe under
  ///                       near-zero effort; irrelevant in count mode.
  RushHourLearner(sim::Duration epoch, std::size_t slot_count,
                  std::size_t rush_slots, double epoch_weight = 0.3,
                  double effort_prior_s = 2.0);

  /// Record one probed contact at time `t`.
  void record_probe(sim::TimePoint t);

  /// Record probing effort (radio-on time) spent at time `t`. Calling this
  /// at least once per epoch switches the epoch to effort-normalised
  /// scoring.
  void record_effort(sim::TimePoint t, sim::Duration radio_on);

  /// Fold the epoch's samples into the long-term scores. Call at each
  /// epoch boundary.
  void finish_epoch();

  /// Epochs folded in so far.
  [[nodiscard]] std::size_t epochs_observed() const noexcept {
    return epochs_;
  }
  /// Long-term per-slot scores (EWMA of per-epoch probe counts).
  [[nodiscard]] const std::vector<double>& scores() const noexcept {
    return scores_;
  }
  /// Slots ordered by decreasing score (ties by index).
  [[nodiscard]] std::vector<contact::SlotIndex> slots_by_score() const;
  /// Mask marking the top `rush_slots` slots.
  [[nodiscard]] RushHourMask mask() const;

 private:
  [[nodiscard]] std::size_t slot_index(sim::TimePoint t) const noexcept;

  sim::Duration epoch_;
  std::size_t rush_slots_;
  double epoch_weight_;
  double effort_prior_s_;
  std::vector<double> scores_;
  std::vector<double> current_counts_;
  std::vector<double> current_effort_s_;
  // Per-slot: has this slot's score been seeded by a real sample yet?
  // (std::vector<char>, not <bool>, for addressable flags.)
  std::vector<char> slot_seeded_;
  std::size_t epochs_{0};
};

}  // namespace snipr::core
