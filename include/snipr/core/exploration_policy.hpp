#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "snipr/core/rush_hour_learner.hpp"
#include "snipr/core/rush_hour_mask.hpp"

/// \file exploration_policy.hpp
/// Breaking the censored-feedback loop of mask-driven probing.
///
/// Once AdaptiveSnipRh adopts a rush-hour mask, almost all probing effort
/// concentrates inside it. A slot outside the mask is observed only by the
/// tiny background tracker — or, with tracking disabled, never again. A
/// rush hour that migrates into such a slot is then invisible: the learner
/// sees zero detections there because the node spent zero effort there,
/// and the mask self-reinforces forever. (The classic bandit starvation
/// problem, here with radio duty as the arm-pull budget.)
///
/// An ExplorationPolicy decides, at each epoch boundary, which out-of-mask
/// slots deserve deliberate probing effort next epoch and at what duty:
///  - kEpsilonFloor: a round-robin rotation guaranteeing every slot a
///    minimum duty floor every ~N/m epochs — the unconditional guarantee.
///  - kUcb: budget-aware upper-confidence-bound ranking; slots with high
///    score-so-far or little lifetime effort win the exploration slots,
///    so effort chases uncertainty instead of rotating blindly.
///  - kOptimistic: no extra wakeups at all; instead under-explored slots'
///    scores are inflated ("optimism in the face of uncertainty") so the
///    mask-refresh hysteresis itself pulls them into the mask for a trial
///    epoch at full knee duty.
///  - kNone: the legacy behaviour, byte-identical to pre-exploration
///    builds.
///
/// The policy composes with AdaptiveSnipRh rather than replacing its
/// learner: plans address slots, the learner keeps owning scores.

namespace snipr::core {

enum class ExplorationPolicyKind {
  kNone,
  kEpsilonFloor,
  kOptimistic,
  kUcb,
};

/// Stable identifier used in configs, CLI flags and bench JSON.
[[nodiscard]] std::string_view exploration_policy_kind_id(
    ExplorationPolicyKind kind);
/// Inverse of exploration_policy_kind_id(); nullopt on unknown ids.
[[nodiscard]] std::optional<ExplorationPolicyKind>
parse_exploration_policy_kind(std::string_view id);

struct ExplorationConfig {
  ExplorationPolicyKind kind{ExplorationPolicyKind::kNone};
  /// Fraction of slots planned for exploration each epoch (eps-floor,
  /// UCB). At least one slot is planned whenever any slot lies outside
  /// the rush-hour mask.
  double epsilon{0.125};
  /// SNIP-AT duty applied inside planned exploration slots. The energy
  /// cost per epoch is roughly epsilon * explore_duty, so the defaults
  /// spend about as much as the legacy tracking_duty of 1e-4 did.
  double explore_duty{0.0005};
  /// UCB exploration constant (kUcb only).
  double ucb_c{1.0};
  /// kOptimistic: an under-explored slot's score is lifted to
  /// optimism_scale x the best seeded score.
  double optimism_scale{1.0};
  /// kOptimistic: lifetime effort below this marks a slot under-explored.
  double optimism_effort_floor_s{1.0};
  /// kOptimistic: at most this many slots are inflated per refresh.
  std::size_t optimism_slots{1};
};

/// One epoch's exploration decision: probe at `duty` inside `mask`.
/// Inactive plans (kNone, kOptimistic, or nothing outside the rush mask)
/// schedule no exploration wakeups.
struct ExplorationPlan {
  RushHourMask mask{sim::Duration::seconds(1), 1};
  double duty{0.0};
  bool active{false};
};

class ExplorationPolicy {
 public:
  explicit ExplorationPolicy(ExplorationConfig config);

  [[nodiscard]] const ExplorationConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] ExplorationPolicyKind kind() const noexcept {
    return config_.kind;
  }

  /// True when the policy explores by inflating the learner's scores
  /// (kOptimistic) rather than by planning extra wakeups; the caller must
  /// then rank effective_scores() instead of learner.scores() when
  /// adopting or refreshing the mask.
  [[nodiscard]] bool inflates_scores() const noexcept {
    return config_.kind == ExplorationPolicyKind::kOptimistic;
  }

  /// Decide next epoch's exploration slots given the learner's statistics
  /// and the mask SNIP-RH is about to exploit. Slots inside `rush_mask`
  /// are never planned — they already receive full knee duty.
  [[nodiscard]] ExplorationPlan plan_epoch(const RushHourLearner& learner,
                                           const RushHourMask& rush_mask);

  /// Score view with optimism applied (kOptimistic); other kinds return
  /// the learner's scores unchanged.
  [[nodiscard]] std::vector<double> effective_scores(
      const RushHourLearner& learner) const;

  /// eps-floor rotation position — checkpointed so a restored node
  /// resumes the round-robin exactly where the crash left it.
  [[nodiscard]] std::size_t cursor() const noexcept { return cursor_; }
  void set_cursor(std::size_t cursor) noexcept { cursor_ = cursor; }

 private:
  ExplorationConfig config_;
  /// eps-floor round-robin position, persisted across epochs so the
  /// rotation covers every out-of-mask slot before revisiting one.
  std::size_t cursor_{0};
};

}  // namespace snipr::core
