#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

/// \file checkpoint_io.hpp
/// Tiny text (de)serialization helpers for scheduler/learner checkpoints
/// (the crash-recovery seam). Doubles travel as hexfloats ("%a", parsed
/// back by strtod) so a snapshot -> restore round trip is bit-exact —
/// the same convention the streaming-fleet checkpoint file uses. Tokens
/// are space-separated; readers fail soft (return false) so a truncated
/// or foreign blob is rejected instead of half-applied.

namespace snipr::core::ckpt {

inline void append_double(std::string& out, double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, "%a", value);
  out += buffer;
  out += ' ';
}

inline void append_u64(std::string& out, std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%llu",
                static_cast<unsigned long long>(value));
  out += buffer;
  out += ' ';
}

/// Sequential whitespace-separated token reader over a checkpoint blob.
class TokenReader {
 public:
  explicit TokenReader(std::string_view text) noexcept : text_{text} {}

  bool next(std::string_view& token) noexcept {
    std::size_t begin = pos_;
    while (begin < text_.size() && is_space(text_[begin])) ++begin;
    if (begin >= text_.size()) return false;
    std::size_t end = begin;
    while (end < text_.size() && !is_space(text_[end])) ++end;
    token = text_.substr(begin, end - begin);
    pos_ = end;
    return true;
  }

  /// Expect the literal `tag` as the next token.
  bool expect(std::string_view tag) noexcept {
    std::string_view token;
    return next(token) && token == tag;
  }

  bool read_double(double& value) noexcept {
    std::string_view token;
    if (!next(token)) return false;
    // Tokens are short; a bounded copy keeps strtod's NUL requirement
    // without allocating.
    char buffer[64];
    if (token.size() >= sizeof buffer) return false;
    token.copy(buffer, token.size());
    buffer[token.size()] = '\0';
    char* end = nullptr;
    value = std::strtod(buffer, &end);
    return end == buffer + token.size();
  }

  bool read_u64(std::uint64_t& value) noexcept {
    std::string_view token;
    if (!next(token)) return false;
    char buffer[32];
    if (token.size() >= sizeof buffer || token.empty()) return false;
    token.copy(buffer, token.size());
    buffer[token.size()] = '\0';
    char* end = nullptr;
    value = std::strtoull(buffer, &end, 10);
    return end == buffer + token.size();
  }

  /// True when every token has been consumed.
  [[nodiscard]] bool exhausted() noexcept {
    std::size_t at = pos_;
    while (at < text_.size() && is_space(text_[at])) ++at;
    return at >= text_.size();
  }

 private:
  [[nodiscard]] static bool is_space(char c) noexcept {
    return c == ' ' || c == '\n' || c == '\t' || c == '\r';
  }

  std::string_view text_;
  std::size_t pos_{0};
};

}  // namespace snipr::core::ckpt
