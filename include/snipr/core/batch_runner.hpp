#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "snipr/core/experiment.hpp"
#include "snipr/core/scenario.hpp"
#include "snipr/core/strategy.hpp"

/// \file batch_runner.hpp
/// Parallel batch experiment engine.
///
/// The paper's evaluation is a grid: mechanism × ζtarget × Φmax × seed
/// (Figs. 5-8), and every scaling question we care about — more scenarios,
/// more seeds, more strategies — is the same grid grown larger. The
/// BatchRunner takes that grid as a declarative list of `BatchRun`s, fans
/// the runs out across a `core::ThreadPool` (each run owns an independent
/// `Simulator` seeded from its own spec, so no state is shared between
/// workers), and returns results in spec order. Because each run's
/// RNG stream is a pure function of its spec, the output — including the
/// aggregated JSON — is byte-identical no matter how many workers execute
/// it.
///
/// `bench_fig7/8`, the ablation drivers and `snipr_cli --batch` all feed
/// this one engine instead of hand-rolling their own sweep loops.

namespace snipr::core {

/// One fully specified experiment: scenario × strategy × point × seed.
struct BatchRun {
  /// Scenario grouping key carried through to results and JSON (e.g.
  /// "roadside", "roadside+shift").
  std::string label{"roadside"};
  RoadsideScenario scenario{};
  Strategy strategy{Strategy::kSnipRh};
  double zeta_target_s{16.0};
  double phi_max_s{86.4};
  std::uint64_t seed{1};
  std::size_t epochs{14};
  std::size_t warmup_epochs{0};
  contact::IntervalJitter jitter{contact::IntervalJitter::kNormalTenth};
  /// Escape hatch for bespoke drivers (pinned duties, ablations): when
  /// set, used instead of `make_scheduler(scenario, strategy, ...)`. Must
  /// be safe to call from a worker thread; each call must return a fresh
  /// scheduler.
  std::function<std::unique_ptr<node::Scheduler>()> scheduler_factory{};

  /// The ExperimentConfig this spec denotes (sensing rate derived from
  /// ζtarget as in Sec. VII-A.2).
  [[nodiscard]] ExperimentConfig experiment_config() const;
};

/// Outcome of one BatchRun, carrying its identity for grouping.
struct BatchRunResult {
  std::string label;
  Strategy strategy{Strategy::kSnipRh};
  double zeta_target_s{0.0};
  double phi_max_s{0.0};
  std::uint64_t seed{0};
  RunResult run;

  /// Joules (probing + transfer) per probed contact; 0 when no contact
  /// was probed.
  [[nodiscard]] double energy_per_contact_j() const noexcept {
    const double joules_per_epoch =
        run.probing_energy_j + run.transfer_energy_j;
    return run.mean_contacts_probed > 0.0
               ? joules_per_epoch / run.mean_contacts_probed
               : 0.0;
  }
};

/// Seed-averaged view of one (label, strategy, ζtarget, Φmax) cell.
struct BatchAggregate {
  std::string label;
  Strategy strategy{Strategy::kSnipRh};
  double zeta_target_s{0.0};
  double phi_max_s{0.0};
  std::size_t seeds{0};
  double mean_zeta_s{0.0};
  double mean_phi_s{0.0};
  double mean_miss_ratio{0.0};
  double mean_probes_issued{0.0};  ///< SNIP wakeups per epoch
  double mean_energy_per_contact_j{0.0};
  double mean_probing_energy_j{0.0};
  double mean_delivery_latency_s{0.0};

  /// ρ = Φ/ζ of the seed-averaged means.
  [[nodiscard]] double rho() const noexcept {
    return mean_zeta_s > 0.0 ? mean_phi_s / mean_zeta_s : 0.0;
  }
};

/// Declarative grid: the cartesian product strategies × targets × budgets
/// × seeds over one scenario.
struct SweepSpec {
  std::string label{"roadside"};
  RoadsideScenario scenario{};
  std::vector<Strategy> strategies{Strategy::kSnipAt, Strategy::kSnipOpt,
                                   Strategy::kSnipRh};
  std::vector<double> zeta_targets_s{16.0, 24.0, 32.0, 40.0, 48.0, 56.0};
  std::vector<double> phi_maxes_s{86.4};
  std::vector<std::uint64_t> seeds{1};
  std::size_t epochs{14};
  std::size_t warmup_epochs{0};
  contact::IntervalJitter jitter{contact::IntervalJitter::kNormalTenth};
};

/// Expand a sweep into concrete runs, in deterministic grid order
/// (strategy-major, then target, budget, seed).
[[nodiscard]] std::vector<BatchRun> expand_sweep(const SweepSpec& sweep);

class BatchRunner {
 public:
  struct Config {
    /// Worker threads; 0 means std::thread::hardware_concurrency().
    std::size_t threads{0};
  };

  BatchRunner() : BatchRunner(Config{}) {}
  explicit BatchRunner(Config config);

  /// Execute every run. Results are in spec order and independent of the
  /// worker count; the first exception thrown by a run is rethrown after
  /// all workers join.
  ///
  /// Contact schedules are shared across the grid: a schedule is a pure
  /// function of (scenario, epochs, jitter, seed), so every distinct
  /// combination is materialised exactly once (in parallel) and the runs
  /// of a group — typically all strategies × targets × budgets of one
  /// seed — execute against one immutable shared schedule. Results are
  /// byte-identical to building a private schedule per run.
  [[nodiscard]] std::vector<BatchRunResult> run(
      const std::vector<BatchRun>& runs) const;

  /// Process-wide count of schedules materialised by run() so far.
  /// Tests use deltas to pin the build-each-schedule-once guarantee.
  [[nodiscard]] static std::uint64_t schedule_builds() noexcept;

  /// Group results by (label, strategy, ζtarget, Φmax), averaging across
  /// seeds. Order follows first appearance in `results`.
  [[nodiscard]] static std::vector<BatchAggregate> aggregate(
      const std::vector<BatchRunResult>& results);

  /// Serialise per-run and aggregated metrics as JSON (schema
  /// "snipr.batch.v1"). Deterministic: same results, same bytes.
  [[nodiscard]] static std::string to_json(
      const std::vector<BatchRunResult>& results);

  /// Write `json` to `path`, verifying the full payload reached the
  /// filesystem; a diagnostic goes to stderr on any failure.
  [[nodiscard]] static bool write_json_file(const std::string& json,
                                            const char* path);

  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

 private:
  std::size_t threads_;
};

}  // namespace snipr::core
