#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

/// \file json_writer.hpp
/// Minimal deterministic JSON building, shared by every emitter
/// (`BatchRunner::to_json`, `FleetEngine::to_json`, the bench artifact
/// writers): fixed field order, "%.10g" doubles, no locale dependence
/// (snprintf with the C locale's decimal point — metrics never pass
/// through iostreams). Same inputs, same bytes — the property the golden
/// corpus and the thread/shard determinism tests pin down.

namespace snipr::core::json {

inline void append_number(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.10g", value);
  out += buffer;
}

inline void append_field(std::string& out, const char* key, double value,
                         bool comma = true) {
  out += '"';
  out += key;
  out += "\":";
  append_number(out, value);
  if (comma) out += ',';
}

inline void append_uint_field(std::string& out, const char* key,
                              std::uint64_t value, bool comma = true) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%llu",
                static_cast<unsigned long long>(value));
  out += '"';
  out += key;
  out += "\":";
  out += buffer;
  if (comma) out += ',';
}

inline void append_string_field(std::string& out, const char* key,
                                std::string_view value, bool comma = true) {
  out += '"';
  out += key;
  out += "\":\"";
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char escaped[8];
          std::snprintf(escaped, sizeof escaped, "\\u%04x",
                        static_cast<unsigned>(c));
          out += escaped;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  if (comma) out += ',';
}

}  // namespace snipr::core::json
