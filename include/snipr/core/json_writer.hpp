#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

/// \file json_writer.hpp
/// Minimal deterministic JSON building, shared by every emitter
/// (`BatchRunner::to_json`, `FleetEngine::to_json`, the bench artifact
/// writers): fixed field order, "%.10g" doubles, no locale dependence
/// (snprintf with the C locale's decimal point — metrics never pass
/// through iostreams). Same inputs, same bytes — the property the golden
/// corpus and the thread/shard determinism tests pin down.

namespace snipr::core::json {

/// Schema identifiers, centralised so no emitter ever hard-codes (and
/// silently forks) a version string. Bump a constant here and every
/// producer — and golden_runner's mismatch check — moves together.
inline constexpr const char* kBatchSchemaV1 = "snipr.batch.v1";
/// Fleet outcome without a network (store-and-forward) section.
inline constexpr const char* kFleetSchemaV1 = "snipr.fleet.v1";
/// Fleet outcome carrying the multi-hop collection "network" section.
inline constexpr const char* kFleetSchemaV2 = "snipr.fleet.v2";
/// Fleet outcome carrying a fault-plane "resilience" section (with or
/// without a network section; an attached fault plan always bumps to v3).
inline constexpr const char* kFleetSchemaV3 = "snipr.fleet.v3";
/// Bounded-memory streaming fleet aggregate (no per-node rows).
inline constexpr const char* kFleetSummarySchemaV1 = "snipr.fleet_summary.v1";
inline constexpr const char* kBenchDeploymentScaleSchemaV1 =
    "snipr.bench.deployment_scale.v1";
inline constexpr const char* kBenchMultihopScaleSchemaV1 =
    "snipr.bench.multihop_scale.v1";
/// Per-policy regret vs the clairvoyant SNIP-OPT benchmark
/// (bench_regret). Regret counters gate upward in
/// tools/check_bench_regression.py: more regret is a regression.
inline constexpr const char* kBenchRegretSchemaV1 = "snipr.bench.regret.v1";
/// Fault-mix sweep (bench_resilience): ζ degradation of each policy
/// relative to its own fault-free run, per (probe-miss, crash-rate)
/// point. The `zeta_regret_s` counters gate upward like the learning
/// regret ones — resilience eroding is the regression.
inline constexpr const char* kBenchResilienceSchemaV1 =
    "snipr.bench.resilience.v1";

/// Open a document with its schema marker: `{"schema":"<schema>",`.
inline void open_document(std::string& out, const char* schema) {
  out += "{\"schema\":\"";
  out += schema;
  out += "\",";
}

/// The schema identifier of a JSON document emitted by open_document
/// (`{"schema":"..."` as the first field), or empty when the document
/// carries none. Used by golden_runner to reject a version mismatch
/// outright instead of reporting it as an opaque byte diff.
[[nodiscard]] inline std::string_view extract_schema(
    std::string_view json) noexcept {
  constexpr std::string_view prefix{"{\"schema\":\""};
  if (json.substr(0, prefix.size()) != prefix) return {};
  const std::size_t begin = prefix.size();
  const std::size_t end = json.find('"', begin);
  if (end == std::string_view::npos) return {};
  return json.substr(begin, end - begin);
}

inline void append_number(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.10g", value);
  out += buffer;
}

inline void append_field(std::string& out, const char* key, double value,
                         bool comma = true) {
  out += '"';
  out += key;
  out += "\":";
  append_number(out, value);
  if (comma) out += ',';
}

inline void append_uint_field(std::string& out, const char* key,
                              std::uint64_t value, bool comma = true) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%llu",
                static_cast<unsigned long long>(value));
  out += '"';
  out += key;
  out += "\":";
  out += buffer;
  if (comma) out += ',';
}

inline void append_string_field(std::string& out, const char* key,
                                std::string_view value, bool comma = true) {
  out += '"';
  out += key;
  out += "\":\"";
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char escaped[8];
          std::snprintf(escaped, sizeof escaped, "\\u%04x",
                        static_cast<unsigned>(c));
          out += escaped;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  if (comma) out += ',';
}

}  // namespace snipr::core::json
