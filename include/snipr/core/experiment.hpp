#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "snipr/contact/schedule.hpp"
#include "snipr/core/scenario.hpp"
#include "snipr/node/scheduler.hpp"
#include "snipr/node/sensor_node.hpp"

/// \file experiment.hpp
/// End-to-end experiment driver: scenario + scheduler -> per-epoch metrics.
///
/// This regenerates the paper's simulation results (Figs. 7-8): it builds
/// the discrete-event world (channel from a contact schedule, one mobile
/// node, one duty-cycled sensor node), runs a number of epochs, and
/// reports per-epoch ζ (probed capacity), Φ (probing overhead),
/// ρ = Φ/ζ, upload volume, contact miss ratio and delivery latency.

namespace snipr::core {

/// Aggregated outcome of a run (means over complete epochs).
struct RunResult {
  std::string scheduler_name;
  std::size_t epochs{0};
  double mean_zeta_s{0.0};        ///< probed capacity per epoch
  double mean_phi_s{0.0};         ///< probing overhead per epoch
  double mean_bytes_uploaded{0.0};
  double mean_contacts_probed{0.0};
  double mean_wakeups{0.0};
  double miss_ratio{0.0};         ///< 1 − probed/total contacts (whole run)
  double mean_delivery_latency_s{0.0};
  double probing_energy_j{0.0};   ///< mean Joules per epoch, probing
  double transfer_energy_j{0.0};  ///< mean Joules per epoch, transfer
  std::vector<node::EpochStats> per_epoch;

  /// ρ = Φ/ζ of the epoch means.
  [[nodiscard]] double rho() const noexcept {
    return mean_zeta_s > 0.0 ? mean_phi_s / mean_zeta_s : 0.0;
  }
};

struct ExperimentConfig {
  std::size_t epochs{14};  ///< the paper simulates two weeks
  /// Per-epoch probing budget Φmax (seconds of radio-on time).
  double phi_max_s{86.4};
  /// Data generation rate (bytes/s); use
  /// RoadsideScenario::sensing_rate_for_target.
  double sensing_rate_bps{1.0};
  /// Contact-interval jitter (kNone = analysis env, kNormalTenth = paper's
  /// simulation env).
  contact::IntervalJitter jitter{contact::IntervalJitter::kNormalTenth};
  std::uint64_t seed{1};
  /// Epochs dropped from the aggregate as warm-up (learning transients).
  std::size_t warmup_epochs{0};
};

/// Run `scheduler` over `scenario` and aggregate the outcome.
[[nodiscard]] RunResult run_experiment(const RoadsideScenario& scenario,
                                       node::Scheduler& scheduler,
                                       const ExperimentConfig& config);

/// Variant over an explicit pre-built schedule (trace-driven runs).
[[nodiscard]] RunResult run_experiment_on_schedule(
    const RoadsideScenario& scenario, contact::ContactSchedule schedule,
    node::Scheduler& scheduler, const ExperimentConfig& config);

/// Variant over a shared immutable schedule: many runs (a BatchRunner
/// grid cell, concurrent workers) can execute against one materialised
/// schedule without copying it. The schedule must not be null.
[[nodiscard]] RunResult run_experiment_on_schedule(
    const RoadsideScenario& scenario,
    std::shared_ptr<const contact::ContactSchedule> schedule,
    node::Scheduler& scheduler, const ExperimentConfig& config);

}  // namespace snipr::core
