#pragma once

#include <memory>

#include "snipr/core/exploration_policy.hpp"
#include "snipr/core/rush_hour_learner.hpp"
#include "snipr/core/snip_at.hpp"
#include "snipr/core/snip_rh.hpp"

/// \file adaptive_snip_rh.hpp
/// Learn-then-exploit SNIP-RH with seasonal tracking.
///
/// Sec. VII-B sketches (and the paper's future work proposes) a node that
/// identifies Rush Hours autonomously: run SNIP-AT at a small duty for a
/// few epochs to rank the time-slots, then switch to SNIP-RH. To keep
/// tracking a drifting pattern, SNIP-AT continues in the background at a
/// much smaller duty; when the learned ranking changes, the rush-hour mask
/// is refreshed at the next epoch boundary.
///
/// The learner only ever sees what the node detected (censored feedback),
/// so an adopted mask starves out-of-mask slots of observations. An
/// ExplorationPolicy (exploration_policy.hpp) composes with the refresh to
/// guarantee those slots still receive deliberate probing effort — or, for
/// the optimistic kind, trial membership in the mask itself.

namespace snipr::core {

struct AdaptiveSnipRhConfig {
  /// Epochs of pure SNIP-AT before the first mask is adopted.
  std::size_t learning_epochs{3};
  /// Duty used while learning.
  double learning_duty{0.001};
  /// Background SNIP-AT duty during the exploit phase (0 disables
  /// tracking; the paper suggests "a very very small duty-cycle").
  double tracking_duty{0.0001};
  /// Slots the mask marks as rush.
  std::size_t rush_slots{4};
  /// EWMA weight per epoch when updating slot scores.
  double score_weight{0.3};
  /// A slot outside the mask replaces the weakest slot inside it only when
  /// its score exceeds the incumbent's by this margin. Prevents the mask
  /// from flickering on single-sample noise while still following a real
  /// shift within a few epochs. 0 disables hysteresis.
  double mask_hysteresis{0.3};
  /// Exploration over out-of-mask slots; the default kind (kNone) keeps
  /// the legacy tracker-only behaviour bit-for-bit.
  ExplorationConfig exploration{};
  /// SNIP-RH parameters for the exploit phase.
  SnipRhConfig rh{};
};

class AdaptiveSnipRh final : public node::Scheduler {
 public:
  AdaptiveSnipRh(sim::Duration epoch, std::size_t slot_count,
                 AdaptiveSnipRhConfig config);

  [[nodiscard]] node::SchedulerDecision on_wakeup(
      const node::SensorContext& ctx) override;
  void on_probe_detected(sim::TimePoint when) override;
  void on_contact_probed(const node::ProbedContactObservation& obs) override;
  void on_epoch_start(std::int64_t epoch_index) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] bool learning() const noexcept { return learning_; }
  [[nodiscard]] const RushHourMask& current_mask() const noexcept {
    return rh_.mask();
  }
  [[nodiscard]] const RushHourLearner& learner() const noexcept {
    return learner_;
  }
  /// The exploration slots planned for the current epoch (inactive until
  /// the first mask is adopted, and always inactive for kNone/kOptimistic).
  [[nodiscard]] const ExplorationPlan& exploration_plan() const noexcept {
    return plan_;
  }

  /// Crash/recovery seam: the checkpoint carries the learner snapshot
  /// (scores, in-flight samples, effort totals, UCB sample counts), the
  /// adopted mask and SNIP-RH estimators, the exploration cursor and
  /// plan, the phase flag and the pacing deadlines — restore() resumes
  /// bit-identically. reset() is full amnesia: back to the learning
  /// phase with an empty mask, as on first boot.
  [[nodiscard]] std::string checkpoint() const override;
  bool restore(std::string_view blob) override;
  void reset() override;
  [[nodiscard]] std::vector<bool> rush_mask_bits() const override {
    return rh_.mask().bits();
  }

 private:
  /// Mask to adopt/refresh against: the learner's ranking, viewed through
  /// the exploration policy's (possibly optimistic) score lens.
  [[nodiscard]] RushHourMask ranked_mask() const;

  AdaptiveSnipRhConfig config_;
  RushHourLearner learner_;
  SnipAt learn_probe_;    ///< learning-phase SNIP-AT
  SnipAt track_probe_;    ///< background tracker during exploit phase
  SnipAt explore_probe_;  ///< duty floor inside planned exploration slots
  SnipRh rh_;
  ExplorationPolicy policy_;
  ExplorationPlan plan_;
  bool learning_{true};
  /// Alternates RH and tracker decisions so both make progress; the
  /// tracker's tiny duty means it rarely wins the earlier wakeup anyway.
  sim::TimePoint next_track_due_{sim::TimePoint::zero()};
  /// Same pacing for the exploration duty floor.
  sim::TimePoint next_explore_due_{sim::TimePoint::zero()};
};

}  // namespace snipr::core
