#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "snipr/sim/rng.hpp"

/// \file fault_plan.hpp
/// Seeded, deterministic fault injection for fleet runs.
///
/// A FaultSpec describes *what* can go wrong — radio false negatives and
/// spurious detections, mid-transfer aborts, node crash/reboot cycles,
/// lossy store-and-forward hand-offs — and a FaultPlan turns it into
/// *when*, using per-node RNG streams forked with the same discipline as
/// the node channel streams: in node order, before any partitioning, from
/// one root seeded with `FaultSpec::seed`. Every fault decision for node
/// i is therefore a pure function of (spec, i) and the node's own event
/// sequence, so a faulted fleet run stays byte-identical at any shard and
/// thread count. With no plan attached nothing here runs and no stream is
/// consumed, which keeps fault-free outputs byte-identical to builds that
/// predate the fault plane.
///
/// Fault decisions must come from these plan-forked streams only; the
/// injectors are handed precomputed scalars (a contact-position fraction,
/// a byte budget) rather than simulator state, so this layer never peeks
/// at ground truth the probing protocol could not see.

namespace snipr::fault {

/// Radio-layer faults, applied at probe and transfer time.
struct RadioFaultSpec {
  /// Probability that a probe which would have detected a contact misses
  /// it (radio false negative). The node pays the full miss cost (Ton)
  /// and the learner never hears about the contact — exactly the
  /// censored distortion a real duty-cycled radio suffers.
  double probe_miss_prob{0.0};
  /// SNR-style weighting of `probe_miss_prob` by contact position: a
  /// probe landing near the contact edges (vehicle at maximum range)
  /// misses up to (1 + weight) times more often than the base rate,
  /// while one at mid-contact misses at the base rate. 0 disables.
  double snr_edge_weight{0.0};
  /// Probability that a probe finding *no* contact hallucinates one
  /// (radio false positive). The phantom detection is reported to the
  /// scheduler — polluting the learner's observed process — but no
  /// transfer follows.
  double spurious_detect_prob{0.0};
  /// Probability that a transfer session aborts partway: the session
  /// ends at a uniform fraction of its planned duration and delivers
  /// the truncated byte count.
  double transfer_abort_prob{0.0};

  [[nodiscard]] bool enabled() const noexcept {
    return probe_miss_prob > 0.0 || spurious_detect_prob > 0.0 ||
           transfer_abort_prob > 0.0;
  }
};

/// Node-layer faults: crash/reboot cycles that cost learned state.
struct NodeFaultSpec {
  /// Per-epoch crash probability, drawn at each epoch boundary. A crash
  /// reboots the node with its scheduler state either wiped (amnesia)
  /// or restored from the last epoch-boundary checkpoint.
  double crash_prob_per_epoch{0.0};
  /// true: reboot restores the scheduler from its last epoch-boundary
  /// checkpoint (flash-backed state). false: full amnesia — the
  /// scheduler restarts as constructed and must re-converge.
  bool restore_from_checkpoint{false};
  /// A crashed node counts as re-converged once this fraction of its
  /// pre-crash rush slots are rush slots again.
  double reconvergence_overlap{0.9};

  [[nodiscard]] bool enabled() const noexcept {
    return crash_prob_per_epoch > 0.0;
  }
};

/// Collection-layer faults: lossy node<->vehicle hand-offs with bounded
/// retry. Every failed attempt and every backoff burns residual contact
/// bandwidth, so reliability trades directly against throughput.
struct CollectionFaultSpec {
  /// Probability that one hand-off attempt (pickup or deposit) is lost.
  double handoff_loss_prob{0.0};
  /// Retries after the first failed attempt before the hand-off is
  /// abandoned (the data stays with its current custodian).
  std::uint32_t max_retries{0};
  /// Backoff before each retry, seconds of contact time (burned from the
  /// session's byte budget at the link rate).
  double retry_backoff_s{0.0};

  [[nodiscard]] bool enabled() const noexcept {
    return handoff_loss_prob > 0.0;
  }
};

/// The full fault plane configuration attached to a fleet run.
struct FaultSpec {
  /// Root seed of the fault-plan streams. Independent of the deployment
  /// seed so the same environment can be replayed under many fault
  /// draws (and vice versa).
  std::uint64_t seed{1};
  RadioFaultSpec radio;
  NodeFaultSpec node;
  CollectionFaultSpec collection;

  [[nodiscard]] bool enabled() const noexcept {
    return radio.enabled() || node.enabled() || collection.enabled();
  }
};

/// Deterministic JSON for a spec (`snipr.fault_plan.v1`) — what the
/// randomized chaos CI job uploads when a seed finds a failure, so the
/// exact plan is reproducible from the artifact alone.
[[nodiscard]] std::string to_json(const FaultSpec& spec);

/// Per-node resilience counters, merged in node order into the
/// `resilience` section of the fleet outcome.
struct NodeResilience {
  std::uint64_t detections_lost{0};     ///< radio false negatives
  std::uint64_t spurious_detections{0}; ///< radio false positives
  std::uint64_t transfers_aborted{0};   ///< sessions cut short
  std::uint64_t crashes{0};             ///< reboot events
  /// Post-crash epochs spent below the re-convergence overlap.
  std::uint64_t reconvergence_epochs{0};
  /// Crashes whose mask recovered within the run.
  std::uint64_t reconvergences{0};

  void merge(const NodeResilience& other) noexcept {
    detections_lost += other.detections_lost;
    spurious_detections += other.spurious_detections;
    transfers_aborted += other.transfers_aborted;
    crashes += other.crashes;
    reconvergence_epochs += other.reconvergence_epochs;
    reconvergences += other.reconvergences;
  }
};

/// One node's fault decision stream plus its counters. Handed to exactly
/// one SensorNode; never shared across nodes, so shard workers never
/// race on it.
class NodeFaultInjector {
 public:
  NodeFaultInjector(const FaultSpec* spec, sim::Rng stream) noexcept
      : spec_{spec}, rng_{stream} {}

  [[nodiscard]] const FaultSpec& spec() const noexcept { return *spec_; }
  [[nodiscard]] NodeResilience& counters() noexcept { return counters_; }
  [[nodiscard]] const NodeResilience& counters() const noexcept {
    return counters_;
  }

  /// Should this would-be detection be dropped? `contact_fraction` is
  /// how far into the contact the probe landed, in [0, 1]; with
  /// `snr_edge_weight` the miss rate rises toward the edges (parabolic:
  /// base rate at mid-contact, base*(1+weight) at either edge). Draws
  /// only when `probe_miss_prob > 0`.
  [[nodiscard]] bool miss_probe(double contact_fraction);

  /// Should this empty probe hallucinate a detection? Draws only when
  /// `spurious_detect_prob > 0`.
  [[nodiscard]] bool spurious_detection();

  /// Abort fraction for a transfer session: 1.0 = run to completion
  /// (the common case), otherwise the uniform fraction of the planned
  /// duration at which the session dies. Draws only when
  /// `transfer_abort_prob > 0`.
  [[nodiscard]] double transfer_abort_fraction();

  /// Does the node crash at this epoch boundary? Draws only when
  /// `crash_prob_per_epoch > 0`.
  [[nodiscard]] bool crash_now();

 private:
  const FaultSpec* spec_;
  sim::Rng rng_;
  NodeResilience counters_;
};

/// Counters of the collection-layer fault stream (single-threaded pass).
struct CollectionResilience {
  std::uint64_t handoffs_lost{0};      ///< failed hand-off attempts
  std::uint64_t handoffs_retried{0};   ///< retry attempts issued
  std::uint64_t handoffs_abandoned{0}; ///< hand-offs given up entirely
};

/// The collection pass's fault stream: one seeded RNG consumed in the
/// pass's deterministic event order (the pass is single-threaded, so the
/// draw sequence is shard-independent by construction).
class CollectionFaultState {
 public:
  CollectionFaultState(const CollectionFaultSpec& spec, sim::Rng stream,
                       double data_rate_bps) noexcept
      : spec_{spec}, rng_{stream}, data_rate_bps_{data_rate_bps} {}

  [[nodiscard]] const CollectionFaultSpec& spec() const noexcept {
    return spec_;
  }
  [[nodiscard]] const CollectionResilience& counters() const noexcept {
    return counters_;
  }

  /// Attempt a hand-off of `want` bytes against the session's remaining
  /// byte budget. Failed attempts burn `want` bytes of budget (the
  /// airtime was spent even though the frames were lost) and each retry
  /// burns `retry_backoff_s` of contact time on top; the grant shrinks
  /// with the budget. Returns the bytes that may move (0 = abandoned:
  /// the data stays with its custodian, so byte conservation holds).
  [[nodiscard]] double attempt_handoff(double want, double& budget_bytes);

 private:
  CollectionFaultSpec spec_;
  sim::Rng rng_;
  double data_rate_bps_;
  CollectionResilience counters_;
};

/// Resilience section of a fleet outcome: the node-layer counters summed
/// in node order plus the collection-layer counters, emitted under
/// `"resilience"` in `snipr.fleet.v3`.
struct ResilienceOutcome {
  NodeResilience probing;
  CollectionResilience collection;
  /// Mirror of the network section's delivery ratio when the run had a
  /// collection pass (the Harvest-style reliability headline), else 0.
  double delivery_ratio_under_loss{0.0};
};

/// A fleet run's worth of per-node fault streams. Forked once, in node
/// order, before any partitioning — the same discipline as the node
/// channel streams — then handed out one injector per node. Non-copyable
/// so injector spec pointers stay valid for the plan's lifetime.
class FaultPlan {
 public:
  FaultPlan(const FaultSpec& spec, std::size_t nodes);
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] NodeFaultInjector& node(std::size_t i) { return nodes_[i]; }
  [[nodiscard]] const NodeFaultInjector& node(std::size_t i) const {
    return nodes_[i];
  }

  /// The collection pass's stream, forked from the root *after* every
  /// node stream (mirroring how the vehicle flow follows the node
  /// channel forks).
  [[nodiscard]] sim::Rng collection_stream() const noexcept {
    return collection_stream_;
  }

  /// Sum the per-node counters in node order.
  [[nodiscard]] NodeResilience merged_node_counters() const noexcept;

 private:
  FaultSpec spec_;
  std::vector<NodeFaultInjector> nodes_;
  sim::Rng collection_stream_;
};

}  // namespace snipr::fault
