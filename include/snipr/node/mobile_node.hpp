#pragma once

#include <cstdint>

#include "snipr/sim/time.hpp"

/// \file mobile_node.hpp
/// The data sink carried through the deployment.
///
/// Mobile nodes have rechargeable batteries so their radio is always on
/// (Sec. III assumption); they answer any probing beacon they hear and
/// absorb uploaded data. In this library the reply logic is evaluated by
/// the channel (delivery is contact-driven); the MobileNode accumulates
/// sink-side statistics so tests can check conservation end-to-end.

namespace snipr::node {

class MobileNode {
 public:
  /// Sink callback: `bytes` arrived over a probed contact. `new_contact`
  /// is false for follow-up transfers within the same contact.
  void deliver(double bytes, sim::TimePoint at,
               bool new_contact = true) noexcept;

  [[nodiscard]] double bytes_received() const noexcept { return bytes_; }
  [[nodiscard]] std::uint64_t contacts_served() const noexcept {
    return contacts_;
  }
  [[nodiscard]] sim::TimePoint last_delivery() const noexcept { return last_; }

 private:
  double bytes_{0.0};
  std::uint64_t contacts_{0};
  sim::TimePoint last_{sim::TimePoint::zero()};
};

}  // namespace snipr::node
