#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "snipr/contact/contact.hpp"
#include "snipr/energy/energy_model.hpp"
#include "snipr/radio/channel.hpp"
#include "snipr/node/data_buffer.hpp"
#include "snipr/node/mobile_node.hpp"
#include "snipr/node/node_block.hpp"
#include "snipr/node/scheduler.hpp"
#include "snipr/sim/simulator.hpp"

/// \file sensor_node.hpp
/// The duty-cycled sensor node (Contiki-substitute state machine).
///
/// One SNIP probing wakeup (Sec. III):
///   1. radio on, transmit a beacon (beacon_airtime);
///   2. listen for a reply until Ton expires;
///   3. on reply: the contact is probed — switch to a transfer session,
///      uploading buffered data until the mobile leaves range or the
///      buffer drains; then radio off;
///   4. on no reply: radio off after Ton.
///
/// Probing overhead Φ is the radio-on time of steps 1-2 (charged against
/// the per-epoch probing budget); transfer airtime is metered separately,
/// matching the paper's Table I definition of Φ.
///
/// The per-wakeup-mutated counters (Φ, ζ, bytes, wakeups, budget, the
/// retiming hints) live in a struct-of-arrays node::NodeBlock lane, not
/// in the node object: a FleetEngine shard hands every node a lane of
/// its own block, so the shard's hot state stays contiguous. Standalone
/// nodes own a private 1-lane block.

namespace snipr::fault {
class NodeFaultInjector;
}  // namespace snipr::fault

namespace snipr::node {

/// Who initiates the probe during a wakeup window.
enum class ProbingProtocol {
  /// SNIP (the paper, Sec. III): the sensor beacons, the mobile replies.
  kSnip,
  /// MIP baseline ([15] in the paper): the sensor only listens; the
  /// mobile broadcasts beacons every LinkParams::mobile_beacon_period
  /// while in range, and the contact is probed when one lands wholly
  /// inside the listen window.
  kMip,
};

struct SensorNodeConfig {
  /// Radio-on time per probing wakeup (SNIP's Ton).
  sim::Duration ton{sim::Duration::milliseconds(20)};
  /// Epoch length for budget/statistics (Tepoch).
  sim::Duration epoch{sim::Duration::hours(24)};
  /// Per-epoch probing-energy budget Φmax (radio-on time).
  sim::Duration budget_limit{sim::Duration::max()};
  /// Data generation rate, bytes/second.
  double sensing_rate_bps{1.0};
  /// Physical energy model for Joule reporting.
  energy::EnergyModel energy_model{};
  /// Probing protocol executed on each wakeup.
  ProbingProtocol protocol{ProbingProtocol::kSnip};
  /// Epochs the run is expected to simulate (0 = unknown). Drivers that
  /// know their horizon set it so the per-epoch history is reserved up
  /// front instead of growing geometrically across a long run.
  std::size_t expected_epochs{0};
  /// Retain the per-epoch EpochStats history (one entry per epoch).
  /// Fleet runs turn this off: the NodeBlock's streaming totals carry
  /// the identical information for run-level summaries, in O(1) memory
  /// per node regardless of epoch count.
  bool record_epoch_history{true};
  /// Retain the per-contact ProbedContactRecord log. Needed only by
  /// consumers that replay individual sessions (the store-and-forward
  /// collection pass, miss-ratio drill-downs); the probed-session *count*
  /// is maintained in the NodeBlock either way.
  bool record_probed_contacts{true};
};

/// Per-epoch outcome counters, snapshotted at each epoch boundary.
struct EpochStats {
  std::int64_t epoch_index{0};
  sim::Duration phi{};             ///< probing radio-on time
  sim::Duration zeta{};            ///< probed contact capacity (ground truth)
  double bytes_uploaded{0.0};
  std::uint64_t contacts_probed{0};
  std::uint64_t wakeups{0};        ///< probing wakeups performed
  double probing_energy_j{0.0};    ///< Joules spent probing
  double transfer_energy_j{0.0};   ///< Joules spent transferring
};

/// Ground-truth record of one probed contact (for miss-ratio analysis).
struct ProbedContactRecord {
  contact::Contact contact;
  sim::TimePoint probe_time;
  double bytes_uploaded{0.0};
};

class SensorNode {
 public:
  /// All references must outlive the node. Call start() once before
  /// running the simulator. This standalone form owns a private 1-lane
  /// NodeBlock.
  SensorNode(sim::Simulator& simulator, radio::Channel& channel,
             MobileNode& sink, Scheduler& scheduler, SensorNodeConfig config);

  /// Fleet form: hot state lives in `block` lane `lane` (owned by the
  /// caller, shared by the shard's nodes; must outlive the node).
  SensorNode(sim::Simulator& simulator, radio::Channel& channel,
             MobileNode& sink, Scheduler& scheduler, SensorNodeConfig config,
             NodeBlock& block, std::size_t lane);

  /// Schedule the first CPU wakeup and the epoch-boundary bookkeeping.
  void start();

  [[nodiscard]] const SensorNodeConfig& config() const noexcept {
    return config_;
  }

  /// Epochs completed so far (snapshotted stats). Empty when
  /// `config.record_epoch_history` is off — use the NodeBlock's
  /// streaming totals instead.
  [[nodiscard]] const std::vector<EpochStats>& epoch_history() const noexcept {
    return history_;
  }
  /// Counters for the epoch in progress, assembled from the block lane.
  [[nodiscard]] EpochStats current_epoch() const noexcept;
  /// Every successfully probed contact since start(). Empty when
  /// `config.record_probed_contacts` is off (the count survives in the
  /// block's probed_sessions lane).
  [[nodiscard]] const std::vector<ProbedContactRecord>& probed_contacts()
      const noexcept {
    return probed_;
  }
  [[nodiscard]] const FluidBuffer& buffer() const noexcept { return buffer_; }
  /// Probing radio-on time in the current epoch (the budget meter).
  [[nodiscard]] sim::Duration budget_used() const noexcept {
    return sim::Duration::microseconds(block_->budget_used_us(lane_));
  }

  /// The hot-state block this node writes (its own 1-lane block for the
  /// standalone form) and the lane within it — how summaries read the
  /// streaming totals without per-epoch history.
  [[nodiscard]] const NodeBlock& block() const noexcept { return *block_; }
  [[nodiscard]] std::size_t lane() const noexcept { return lane_; }

  /// Attach this node's fault-plan stream (fault::FaultPlan hands out one
  /// injector per node; must outlive the node). Null detaches. With no
  /// injector attached every fault path is skipped entirely — no RNG
  /// draw, no extra work — so fault-free runs stay byte-identical.
  void attach_faults(fault::NodeFaultInjector* faults) noexcept {
    faults_ = faults;
  }

 private:
  /// Shared delegate: `owned` is the standalone form's private block
  /// (null for fleet nodes); `block` overrides it when non-null.
  SensorNode(sim::Simulator& simulator, radio::Channel& channel,
             MobileNode& sink, Scheduler& scheduler, SensorNodeConfig config,
             std::unique_ptr<NodeBlock> owned, NodeBlock* block,
             std::size_t lane);

  void cpu_wakeup();
  void schedule_next(sim::Duration delay);
  void probing_wakeup();
  void snip_wakeup();
  void mip_wakeup();
  /// `new_session` is false when re-beaconing inside an already-probed
  /// contact (after an early buffer drain): more data may flow, but ζ,
  /// contact counts and learning observations are not double-counted.
  void begin_transfer(const contact::Contact& active, sim::TimePoint probe_time,
                      sim::Duration cycle_hint, bool new_session);
  void epoch_boundary();
  /// Crash/reboot step of the epoch boundary (fault plan attached only):
  /// draw the crash, wipe or restore the scheduler, and track how many
  /// epochs the relearned mask needs to re-cover the pre-crash one.
  void crash_and_recovery_step();
  [[nodiscard]] SensorContext make_context() const;

  sim::Simulator& sim_;
  radio::Channel& channel_;
  MobileNode& sink_;
  Scheduler& scheduler_;
  SensorNodeConfig config_;

  /// Present only for the standalone form; fleet nodes borrow the
  /// shard's block.
  std::unique_ptr<NodeBlock> owned_block_;
  NodeBlock* block_;
  std::size_t lane_;

  FluidBuffer buffer_;
  energy::EnergyMeter probing_meter_;
  energy::EnergyMeter transfer_meter_;

  std::int64_t epoch_index_{0};
  std::vector<EpochStats> history_;
  std::vector<ProbedContactRecord> probed_;
  double probing_j_mark_{0.0};
  double transfer_j_mark_{0.0};
  bool started_{false};

  /// Fault plane (null = no faults; every hook is then skipped).
  fault::NodeFaultInjector* faults_{nullptr};
  /// Scheduler checkpoint refreshed each epoch boundary (restore mode).
  std::string checkpoint_;
  /// The last rush mask seen before a crash — the re-convergence target.
  /// Frozen while re-converging, refreshed each healthy epoch otherwise.
  std::vector<bool> last_good_mask_bits_;
  bool reconverging_{false};
};

}  // namespace snipr::node
