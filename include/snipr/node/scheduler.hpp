#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "snipr/sim/time.hpp"

/// \file scheduler.hpp
/// The radio-scheduling seam of a sensor node.
///
/// The sensor node's CPU wakes periodically and asks its scheduler whether
/// to carry out a SNIP probing wakeup now and when to check again
/// (Sec. VI-B of the paper). Concrete policies — SNIP-AT, SNIP-OPT,
/// SNIP-RH, adaptive variants — live in snipr::core; the node only knows
/// this interface.

namespace snipr::node {

/// Snapshot handed to the scheduler at each CPU wakeup.
struct SensorContext {
  sim::TimePoint now;
  double buffer_bytes{0.0};        ///< data currently buffered
  sim::Duration budget_used{};     ///< probing radio-on time this epoch
  sim::Duration budget_limit{};    ///< Φmax per epoch
  std::int64_t epoch_index{0};
};

/// What the sensor observed about one successfully probed contact.
struct ProbedContactObservation {
  sim::TimePoint probe_time;          ///< both sides aware of each other
  sim::Duration observed_probed_len;  ///< probe_time .. transfer end
  double bytes_uploaded{0.0};
  sim::Duration cycle_at_probe{};     ///< Tcycle in effect when probed
  /// True when the transfer ended because the mobile node left range (the
  /// observation spans the full Tprobed); false when the buffer drained
  /// first (the observation is truncated).
  bool saw_departure{true};
};

/// Scheduler verdict for one CPU wakeup.
struct SchedulerDecision {
  /// Perform one SNIP wakeup (radio on for Ton, beacon, listen) now.
  bool probe{false};
  /// Delay until the next CPU wakeup. After a probing wakeup this is
  /// typically the SNIP cycle Tcycle = Ton/d; otherwise a coarser check
  /// period. Must be positive.
  sim::Duration next_wakeup{sim::Duration::seconds(1)};
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  Scheduler(Scheduler&&) = delete;
  Scheduler& operator=(Scheduler&&) = delete;

  /// Called at every CPU wakeup; decides whether to probe now.
  [[nodiscard]] virtual SchedulerDecision on_wakeup(
      const SensorContext& ctx) = 0;

  /// Called synchronously the instant a new contact is detected (both
  /// sides aware), before any transfer runs. This is the censored-
  /// feedback hook: slot-occupancy learners must count detections here,
  /// at detection time, so a transfer that straddles an epoch boundary
  /// cannot push the count into the epoch after the one whose probing
  /// effort produced it. Fires exactly once per probed contact — a
  /// re-beacon inside an already-probed contact does not repeat it.
  virtual void on_probe_detected(sim::TimePoint when);

  /// Called after each successfully probed contact's transfer ends
  /// (learning hook for quantities only known at completion: observed
  /// length, bytes uploaded).
  virtual void on_contact_probed(const ProbedContactObservation& obs);

  /// Called at each epoch boundary, before the budget resets.
  virtual void on_epoch_start(std::int64_t epoch_index);

  /// Human-readable policy name for reports.
  [[nodiscard]] virtual std::string name() const = 0;

  // --- Crash/recovery seam (the fault plane's checkpoint API) ----------

  /// Serialize all learned state as deterministic text (hexfloat
  /// doubles, so restore() is bit-exact). Empty = the policy is
  /// stateless and a reboot costs it nothing.
  [[nodiscard]] virtual std::string checkpoint() const { return {}; }

  /// Restore state captured by checkpoint() on a scheduler constructed
  /// with the same configuration. Returns false (state unchanged) when
  /// the blob does not parse; an empty blob is the stateless policies'
  /// valid no-op checkpoint.
  virtual bool restore(std::string_view blob) { return blob.empty(); }

  /// Reboot with amnesia: discard learned state back to as-constructed.
  /// Configuration (duties, provisioned masks, targets) survives — it
  /// lives in flash, not RAM.
  virtual void reset() {}

  /// Learned rush-slot bits, empty when the policy maintains no mask —
  /// the fault plane's re-convergence yardstick after a crash.
  [[nodiscard]] virtual std::vector<bool> rush_mask_bits() const {
    return {};
  }
};

}  // namespace snipr::node
