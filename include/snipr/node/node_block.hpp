#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "snipr/sim/time.hpp"

/// \file node_block.hpp
/// Struct-of-arrays hot state for a block of sensor nodes.
///
/// A fleet shard simulates hundreds of nodes inside one Simulator, and
/// every probing wakeup mutates a handful of per-node counters (Φ, ζ,
/// bytes, wakeups, the budget meter, the retiming hints). Keeping those
/// inside each SensorNode scatters the shard's hot words across
/// node-sized heap objects; a NodeBlock packs them into one contiguous
/// lane per field, so the wakeup working set of a whole shard stays
/// within a few cache lines per counter. The block also carries each
/// node's *streaming* run totals — per-epoch sums folded at every epoch
/// boundary — which is what lets a fleet run drop the per-epoch history
/// vector entirely (SensorNodeConfig::record_epoch_history) and still
/// summarise bit-identically: the fold performs the same double
/// additions, in the same epoch order, that summarising a retained
/// history would.
///
/// Each FleetEngine shard owns one block sized to its node range; the
/// single-node constructors of SensorNode own a private 1-lane block, so
/// standalone nodes keep their historical API.

namespace snipr::node {

class NodeBlock {
 public:
  /// Sentinel for `last_probed_arrival_us`: no contact probed yet.
  /// (A real arrival can never sit at the far negative edge of the time
  /// axis — simulations start at TimePoint::zero().)
  static constexpr std::int64_t kNoArrival =
      std::numeric_limits<std::int64_t>::min();

  explicit NodeBlock(std::size_t nodes)
      : size_{nodes},
        phi_us_(nodes, 0),
        zeta_us_(nodes, 0),
        bytes_uploaded_(nodes, 0.0),
        contacts_probed_(nodes, 0),
        wakeups_(nodes, 0),
        budget_used_us_(nodes, 0),
        last_wakeup_us_(nodes, 1'000'000),  // historical 1 s default
        last_probed_arrival_us_(nodes, kNoArrival),
        epochs_(nodes, 0),
        sum_zeta_s_(nodes, 0.0),
        sum_phi_s_(nodes, 0.0),
        sum_bytes_(nodes, 0.0),
        sum_contacts_(nodes, 0.0),
        probed_sessions_(nodes, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  // --- Epoch-scoped counters (zeroed by fold_epoch) ---------------------
  [[nodiscard]] std::int64_t& phi_us(std::size_t lane) noexcept {
    return phi_us_[lane];
  }
  [[nodiscard]] std::int64_t phi_us(std::size_t lane) const noexcept {
    return phi_us_[lane];
  }
  [[nodiscard]] std::int64_t& zeta_us(std::size_t lane) noexcept {
    return zeta_us_[lane];
  }
  [[nodiscard]] std::int64_t zeta_us(std::size_t lane) const noexcept {
    return zeta_us_[lane];
  }
  [[nodiscard]] double& bytes_uploaded(std::size_t lane) noexcept {
    return bytes_uploaded_[lane];
  }
  [[nodiscard]] double bytes_uploaded(std::size_t lane) const noexcept {
    return bytes_uploaded_[lane];
  }
  [[nodiscard]] std::uint64_t& contacts_probed(std::size_t lane) noexcept {
    return contacts_probed_[lane];
  }
  [[nodiscard]] std::uint64_t contacts_probed(std::size_t lane) const noexcept {
    return contacts_probed_[lane];
  }
  [[nodiscard]] std::uint64_t& wakeups(std::size_t lane) noexcept {
    return wakeups_[lane];
  }
  [[nodiscard]] std::uint64_t wakeups(std::size_t lane) const noexcept {
    return wakeups_[lane];
  }
  [[nodiscard]] std::int64_t& budget_used_us(std::size_t lane) noexcept {
    return budget_used_us_[lane];
  }
  [[nodiscard]] std::int64_t budget_used_us(std::size_t lane) const noexcept {
    return budget_used_us_[lane];
  }
  /// The scheduler's most recent next_wakeup decision (the retiming hint
  /// re-applied after a transfer completes).
  [[nodiscard]] std::int64_t& last_wakeup_us(std::size_t lane) noexcept {
    return last_wakeup_us_[lane];
  }
  /// Arrival timestamp of the last probed contact (kNoArrival = none) —
  /// the new-session test that keeps re-probes of one contact from
  /// double-counting ζ.
  [[nodiscard]] std::int64_t& last_probed_arrival_us(
      std::size_t lane) noexcept {
    return last_probed_arrival_us_[lane];
  }

  // --- Run-scoped streaming totals --------------------------------------
  [[nodiscard]] std::uint64_t epochs(std::size_t lane) const noexcept {
    return epochs_[lane];
  }
  [[nodiscard]] double sum_zeta_s(std::size_t lane) const noexcept {
    return sum_zeta_s_[lane];
  }
  [[nodiscard]] double sum_phi_s(std::size_t lane) const noexcept {
    return sum_phi_s_[lane];
  }
  [[nodiscard]] double sum_bytes(std::size_t lane) const noexcept {
    return sum_bytes_[lane];
  }
  [[nodiscard]] double sum_contacts(std::size_t lane) const noexcept {
    return sum_contacts_[lane];
  }
  /// Probed sessions over the whole run (the numerator of miss_ratio),
  /// maintained whether or not per-contact records are retained.
  [[nodiscard]] std::uint64_t& probed_sessions(std::size_t lane) noexcept {
    return probed_sessions_[lane];
  }
  [[nodiscard]] std::uint64_t probed_sessions(std::size_t lane) const noexcept {
    return probed_sessions_[lane];
  }

  /// Fold the lane's epoch counters into its streaming totals — the same
  /// `+= value.to_seconds()` additions, in the same epoch order, that
  /// summarising a retained history performs — then zero the epoch
  /// counters (including the budget meter: a fold IS the epoch boundary).
  void fold_epoch(std::size_t lane) noexcept {
    sum_zeta_s_[lane] += sim::Duration::microseconds(zeta_us_[lane]).to_seconds();
    sum_phi_s_[lane] += sim::Duration::microseconds(phi_us_[lane]).to_seconds();
    sum_bytes_[lane] += bytes_uploaded_[lane];
    sum_contacts_[lane] += static_cast<double>(contacts_probed_[lane]);
    ++epochs_[lane];
    phi_us_[lane] = 0;
    zeta_us_[lane] = 0;
    bytes_uploaded_[lane] = 0.0;
    contacts_probed_[lane] = 0;
    wakeups_[lane] = 0;
    budget_used_us_[lane] = 0;
  }

 private:
  std::size_t size_;
  // Epoch-scoped lanes.
  std::vector<std::int64_t> phi_us_;
  std::vector<std::int64_t> zeta_us_;
  std::vector<double> bytes_uploaded_;
  std::vector<std::uint64_t> contacts_probed_;
  std::vector<std::uint64_t> wakeups_;
  std::vector<std::int64_t> budget_used_us_;
  std::vector<std::int64_t> last_wakeup_us_;
  std::vector<std::int64_t> last_probed_arrival_us_;
  // Run-scoped streaming lanes.
  std::vector<std::uint64_t> epochs_;
  std::vector<double> sum_zeta_s_;
  std::vector<double> sum_phi_s_;
  std::vector<double> sum_bytes_;
  std::vector<double> sum_contacts_;
  std::vector<std::uint64_t> probed_sessions_;
};

}  // namespace snipr::node
