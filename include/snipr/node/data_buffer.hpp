#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "snipr/sim/time.hpp"

/// \file data_buffer.hpp
/// Fluid sensing buffers.
///
/// The paper's workload is constant-rate sensing ("the sensed data is
/// generated with a constant rate derived from ζtarget", Sec. VII-A.2), so
/// the buffer level is the closed form  rate·t − uploaded  and needs no
/// per-sample events. Amounts are fractional bytes (fluid model); the
/// harness reports whole-byte totals.
///
/// Two buffers share the fluid model: FluidBuffer (the classic unbounded
/// per-node sensing buffer the probing layer drains) and StoreBuffer (a
/// capacity-bounded FIFO *parcel* store for store-and-forward collection,
/// where provenance — origin node, generation interval, hop count,
/// deadline — must survive custody transfers).

namespace snipr::node {

class FluidBuffer {
 public:
  /// \param rate_bps data generation rate in bytes/second (>= 0).
  explicit FluidBuffer(double rate_bps);

  [[nodiscard]] double rate_bps() const noexcept { return rate_bps_; }

  /// Bytes generated since t=0.
  [[nodiscard]] double produced(sim::TimePoint t) const noexcept;
  /// Bytes currently buffered (produced − uploaded).
  [[nodiscard]] double available(sim::TimePoint t) const noexcept;
  /// Bytes uploaded so far.
  [[nodiscard]] double uploaded() const noexcept { return uploaded_; }

  /// Remove up to `amount` bytes at time `t`; returns the amount actually
  /// taken (bounded by availability).
  double take(sim::TimePoint t, double amount) noexcept;

  /// Mean delivery latency (upload time − generation time) over all bytes
  /// uploaded so far, seconds. Exact for the FIFO fluid model: a take of
  /// `b` bytes at time T drains generation interval
  /// [uploaded/rate, (uploaded+b)/rate], whose mean age is
  /// T − (uploaded + b/2)/rate. Zero before any upload.
  [[nodiscard]] double mean_delivery_latency_s() const noexcept;

 private:
  double rate_bps_;
  double uploaded_{0.0};
  double latency_byteseconds_{0.0};
};

/// A contiguous chunk of sensed fluid data in custody somewhere in the
/// network. The generation interval is carried instead of a single
/// timestamp so end-to-end latency statistics stay exact under the fluid
/// model: a parcel delivered at T contributes a *uniform* latency segment
/// [T − gen_end_s, T − gen_start_s] weighted by its bytes.
struct Parcel {
  std::uint32_t origin{0};  ///< node index that sensed the data
  double bytes{0.0};
  double gen_start_s{0.0};  ///< generation interval (uniform density)
  double gen_end_s{0.0};
  std::uint16_t hops{0};  ///< custody transfers so far
  /// Absolute delivery deadline, seconds; +inf = none.
  double deadline_s{std::numeric_limits<double>::infinity()};
};

/// What a full StoreBuffer does with newly sensed fluid.
enum class StoreDropPolicy : std::uint8_t {
  kTailDrop,     ///< refuse the newest incoming fluid
  kOldestFirst,  ///< evict the oldest buffered parcels
};

/// Capacity-bounded FIFO parcel store — a node's sensed-data holding pen
/// in the store-and-forward collection pass. Sensed fluid accrues as a
/// linear ramp between custody events (`accrue`); vehicles remove
/// oldest-first (`take`) and deposit cargo (`deposit`, bounded by free
/// space — the carrier keeps what does not fit, so deposits never drop).
/// Occupancy statistics are exact: the level is piecewise linear (ramps
/// under accrual, steps at transfers) and the integral of each piece is
/// accumulated in closed form.
class StoreBuffer {
 public:
  /// \param capacity_bytes store capacity; +inf = unbounded, 0 = a store
  ///        that drops everything it is offered (the degenerate edge the
  ///        tests pin — distinct from RoutingSpec's "0 = unlimited"
  ///        convenience, which the collection pass maps to +inf here).
  explicit StoreBuffer(double capacity_bytes, StoreDropPolicy policy);

  [[nodiscard]] double capacity_bytes() const noexcept { return capacity_; }
  [[nodiscard]] double level() const noexcept { return level_; }
  [[nodiscard]] double dropped_bytes() const noexcept { return dropped_; }
  [[nodiscard]] double max_level() const noexcept { return max_level_; }
  [[nodiscard]] std::size_t parcel_count() const noexcept {
    return parcels_.size();
  }

  /// Sensed fluid generated uniformly over [t0, t1] at `rate_bps`,
  /// appended as one parcel from `origin`. Overflow follows the drop
  /// policy: kTailDrop accepts only the earliest-generated prefix that
  /// fits (the data sensed *after* the store filled is the data lost);
  /// kOldestFirst evicts from the front — and when the incoming span
  /// itself exceeds what eviction can free, keeps its *newest*
  /// sub-interval (oldest-first discards old data, never fresh). The
  /// stored parcel's deadline is its generation start plus `ttl_s`
  /// (+inf = never expires), so a truncated parcel's deadline tracks
  /// the data actually kept. Returns bytes dropped. Times must not run
  /// backwards.
  double accrue(double t0_s, double t1_s, double rate_bps,
                std::uint32_t origin,
                double ttl_s = std::numeric_limits<double>::infinity());

  /// Vehicle deposit at time `t_s`: parcels move in FIFO order, bounded
  /// by free space (a parcel may split; the untransferred remainder is
  /// written back to `cargo`). Stored parcels record the custody
  /// transfer (hops + 1). Returns bytes accepted.
  double deposit(double t_s, std::vector<Parcel>& cargo, double max_bytes);

  /// Remove up to `max_bytes`, oldest first, at time `t_s`; split
  /// parcels keep the older generation sub-interval. Appends the removed
  /// parcels to `out` and returns bytes taken.
  double take(double t_s, double max_bytes, std::vector<Parcel>& out);

  /// Drop every buffered parcel whose deadline has passed at `t_s`;
  /// returns bytes expired. (Expiry is lazy — called at custody events.)
  double expire(double t_s);

  /// Advance the occupancy integral to `t_s` with the level flat (no
  /// accrual), e.g. before reading statistics at the horizon.
  void advance(double t_s);

  /// Time-weighted mean level over [0, t_s].
  [[nodiscard]] double mean_level(double t_s) const noexcept;

  [[nodiscard]] const std::deque<Parcel>& parcels() const noexcept {
    return parcels_;
  }

 private:
  [[nodiscard]] bool bounded() const noexcept {
    return capacity_ < std::numeric_limits<double>::infinity();
  }

  double capacity_;
  StoreDropPolicy policy_;
  std::deque<Parcel> parcels_;
  double level_{0.0};
  double max_level_{0.0};
  double dropped_{0.0};
  double last_t_s_{0.0};
  double occupancy_integral_{0.0};  ///< ∫ level dt, byte·seconds
};

}  // namespace snipr::node
