#pragma once

#include <cstdint>

#include "snipr/sim/time.hpp"

/// \file data_buffer.hpp
/// Fluid sensing buffer.
///
/// The paper's workload is constant-rate sensing ("the sensed data is
/// generated with a constant rate derived from ζtarget", Sec. VII-A.2), so
/// the buffer level is the closed form  rate·t − uploaded  and needs no
/// per-sample events. Amounts are fractional bytes (fluid model); the
/// harness reports whole-byte totals.

namespace snipr::node {

class FluidBuffer {
 public:
  /// \param rate_bps data generation rate in bytes/second (>= 0).
  explicit FluidBuffer(double rate_bps);

  [[nodiscard]] double rate_bps() const noexcept { return rate_bps_; }

  /// Bytes generated since t=0.
  [[nodiscard]] double produced(sim::TimePoint t) const noexcept;
  /// Bytes currently buffered (produced − uploaded).
  [[nodiscard]] double available(sim::TimePoint t) const noexcept;
  /// Bytes uploaded so far.
  [[nodiscard]] double uploaded() const noexcept { return uploaded_; }

  /// Remove up to `amount` bytes at time `t`; returns the amount actually
  /// taken (bounded by availability).
  double take(sim::TimePoint t, double amount) noexcept;

  /// Mean delivery latency (upload time − generation time) over all bytes
  /// uploaded so far, seconds. Exact for the FIFO fluid model: a take of
  /// `b` bytes at time T drains generation interval
  /// [uploaded/rate, (uploaded+b)/rate], whose mean age is
  /// T − (uploaded + b/2)/rate. Zero before any upload.
  [[nodiscard]] double mean_delivery_latency_s() const noexcept;

 private:
  double rate_bps_;
  double uploaded_{0.0};
  double latency_byteseconds_{0.0};
};

}  // namespace snipr::node
