#pragma once

#include <cstdint>
#include <vector>

#include "snipr/deploy/road_contacts.hpp"
#include "snipr/deploy/routing.hpp"

/// \file collection.hpp
/// The store-and-forward collection pass (the data plane).
///
/// The sharded probing layer decides *which* contacts each node detects;
/// this pass decides where the sensed bytes go. It replays the probed
/// sessions of the whole fleet in one deterministic time order and moves
/// fluid data node → vehicle → (relay node → vehicle →)* sink, bounded
/// by link bandwidth × residual contact time, store capacities and the
/// forwarding policy. Running it single-threaded over shard-independent
/// inputs is what keeps the v2 fleet output byte-identical at any
/// shard/thread count: the probing layer already guarantees the session
/// list is a pure function of (seed, spec), and everything here is a
/// pure function of the session list.

namespace snipr::fault {
class CollectionFaultState;
}  // namespace snipr::fault

namespace snipr::deploy {

/// One successfully probed contact, with carrier identity restored.
struct CollectionSession {
  std::uint32_t node{0};     ///< fleet node index
  std::uint32_t vehicle{0};  ///< index into CollectionInput::vehicles
  double probe_time_s{0.0};  ///< when the probe handshake completed
  double departure_s{0.0};   ///< when the carrier leaves range
};

struct CollectionInput {
  RoutingSpec routing;
  /// Per-node sensed-data generation rate, bytes/second.
  double sensing_rate_bps{0.0};
  /// Link payload bandwidth, bytes/second (radio::LinkParams).
  double data_rate_bps{0.0};
  /// Communication range (sets the sink's service window).
  double range_m{10.0};
  /// Node positions along the road, metres (fleet node order).
  std::vector<double> positions_m;
  /// The materialised vehicle flow (carrier geometry: entry, speed,
  /// exit). Sessions index into this vector.
  std::vector<VehicleEntry> vehicles;
  /// Probed sessions, any order — the pass sorts them deterministically.
  std::vector<CollectionSession> sessions;
  double horizon_s{0.0};
  /// Lossy hand-offs with bounded retry (null = lossless). The state is
  /// consumed in the pass's deterministic event order, so the draw
  /// sequence — like everything else here — is shard-independent.
  fault::CollectionFaultState* faults{nullptr};
};

/// Position of the collection sink for this input: the sink node's
/// position when `routing.sink_node` is set, otherwise a virtual sink
/// one communication range past the last node.
[[nodiscard]] double sink_position_m(const CollectionInput& input);

/// Run the collection pass. Deterministic: same input, same outcome
/// (and the same `snipr.fleet.v2` bytes through to_json).
[[nodiscard]] NetworkOutcome run_collection(const CollectionInput& input);

}  // namespace snipr::deploy
