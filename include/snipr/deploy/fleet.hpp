#pragma once

#include <cstddef>

#include "snipr/contact/process.hpp"
#include "snipr/contact/profile.hpp"
#include "snipr/core/strategy.hpp"

/// \file fleet.hpp
/// Declarative description of a road-side fleet (the paper's Fig. 1
/// network setting): N sensor nodes along one road, all visited by the
/// same uncontrolled vehicle flow. Plain data so the scenario catalog can
/// carry fleet entries without knowing how the engine runs them; the
/// execution machinery lives in fleet_engine.hpp.

namespace snipr::deploy {

struct FleetSpec {
  /// Sensor nodes along the road.
  std::size_t nodes{64};
  /// Position of node 0 (metres from the road entry) and the uniform
  /// spacing between consecutive nodes.
  double first_position_m{50.0};
  double spacing_m{300.0};
  /// Communication range shared by every node.
  double range_m{10.0};

  /// Vehicle entry-interval profile (rush hours!) and its jitter.
  contact::ArrivalProfile flow_profile{contact::ArrivalProfile::roadside()};
  contact::IntervalJitter jitter{contact::IntervalJitter::kNormalTenth};

  /// Per-vehicle speed: truncated normal, or fixed when stddev <= 0.
  double speed_mean_mps{10.0};
  double speed_stddev_mps{1.5};
  double speed_min_mps{2.0};

  /// Probing mechanism every node runs, at this operating point.
  core::Strategy strategy{core::Strategy::kSnipRh};
  double zeta_target_s{16.0};
};

}  // namespace snipr::deploy
