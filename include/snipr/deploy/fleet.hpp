#pragma once

#include <cstddef>
#include <string>

#include "snipr/contact/process.hpp"
#include "snipr/contact/profile.hpp"
#include "snipr/core/strategy.hpp"

/// \file fleet.hpp
/// Declarative description of a road-side fleet (the paper's Fig. 1
/// network setting): N sensor nodes along one road, all visited by the
/// same uncontrolled vehicle flow. Plain data so the scenario catalog can
/// carry fleet entries without knowing how the engine runs them; the
/// execution machinery lives in fleet_engine.hpp.

namespace snipr::deploy {

struct FleetSpec {
  /// Sensor nodes along the road.
  std::size_t nodes{64};
  /// Position of node 0 (metres from the road entry) and the uniform
  /// spacing between consecutive nodes.
  double first_position_m{50.0};
  double spacing_m{300.0};
  /// Communication range shared by every node.
  double range_m{10.0};

  /// Vehicle entry-interval profile (rush hours!) and its jitter.
  contact::ArrivalProfile flow_profile{contact::ArrivalProfile::roadside()};
  contact::IntervalJitter jitter{contact::IntervalJitter::kNormalTenth};

  /// Per-vehicle speed: truncated normal, or fixed when stddev <= 0.
  double speed_mean_mps{10.0};
  double speed_stddev_mps{1.5};
  double speed_min_mps{2.0};

  /// Probing mechanism every node runs, at this operating point.
  core::Strategy strategy{core::Strategy::kSnipRh};
  double zeta_target_s{16.0};

  /// Trace-driven workload: when `trace` names a `trace::TraceCatalog`
  /// entry, node i replays that trace instead of sampling the generative
  /// vehicle flow — phase-rotated by i * trace_stagger_s within the
  /// trace span (tiled at the trace entry's own epoch) and perturbed per
  /// contact by trace_jitter_stddev_s from the node's own RNG stream. A
  /// *heterogeneous* fleet: every node sees a different slice of one
  /// recorded (or generated) workload. The geometry and speed fields
  /// above are then ignored, but `flow_profile` still matters: its epoch
  /// sets the simulation horizon and every node's scheduling slot grid,
  /// so keep it on the same epoch the trace was recorded against.
  std::string trace;
  double trace_stagger_s{0.0};
  double trace_jitter_stddev_s{0.0};
  /// Resolution directory for a file-backed trace entry. Empty = the
  /// runtime default ($SNIPR_TRACE_DATA_DIR, then the compiled-in
  /// corpus dir); a catalog-pinned fleet must set
  /// trace::TraceCatalog::compiled_data_dir() so an environment override
  /// cannot swap the corpus behind a golden-pinned name.
  std::string trace_data_dir;
};

}  // namespace snipr::deploy
