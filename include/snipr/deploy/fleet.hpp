#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "snipr/contact/profile.hpp"
#include "snipr/core/strategy.hpp"
#include "snipr/deploy/routing.hpp"
#include "snipr/deploy/workload.hpp"
#include "snipr/fault/fault_plan.hpp"

/// \file fleet.hpp
/// Declarative description of a road-side fleet (the paper's Fig. 1
/// network setting). Plain data so the scenario catalog can carry fleet
/// entries without knowing how the engine runs them; the execution
/// machinery lives in fleet_engine.hpp.
///
/// The contact workload is an explicit `deploy::Workload` variant —
/// RoadWorkload (shared generative flow over a road geometry) or
/// TraceWorkload (per-node rotated trace replay) — constructed through
/// the `FleetSpec::road` / `FleetSpec::trace_replay` factories rather
/// than by poking flat fields and hoping the unrelated ones are ignored
/// (the old API's failure mode: a catalog entry that set `trace` but
/// forgot geometry fields were now dead, or vice versa).

namespace snipr::deploy {

struct FleetSpec {
  /// Sensor nodes in the fleet.
  std::size_t nodes{64};

  /// What produces each node's contacts: a shared generative road flow
  /// or a per-node rotated trace replay.
  Workload workload{RoadWorkload{}};

  /// Vehicle entry-interval profile (rush hours!). Top-level — not
  /// inside RoadWorkload — because both workload kinds need it: the
  /// road flow samples entry intervals from it, and a trace replay
  /// still takes its epoch for the simulation horizon and every node's
  /// scheduling slot grid (keep it on the epoch the trace was recorded
  /// against).
  contact::ArrivalProfile flow_profile{contact::ArrivalProfile::roadside()};

  /// Probing mechanism every node runs, at this operating point.
  core::Strategy strategy{core::Strategy::kSnipRh};
  double zeta_target_s{16.0};

  /// Exploration over censored slots, applied when `strategy` is
  /// kAdaptive (ignored otherwise). Default kNone preserves the legacy
  /// tracker-only adaptive behaviour.
  core::ExplorationConfig exploration{};

  /// Store-and-forward collection on top of the detected contacts.
  /// Engaged → the outcome gains a network section and the JSON schema
  /// moves to `snipr.fleet.v2`. Road workloads only: a trace replay has
  /// no vehicle identity to ferry data with (the engine rejects the
  /// combination).
  std::optional<RoutingSpec> routing;

  /// Deterministic fault plane. Null (or an all-zero spec): no faults,
  /// no fault-stream draws, output byte-identical to fault-free builds.
  /// Enabled: the outcome gains a `resilience` section and the JSON
  /// schema moves to `snipr.fleet.v3`. Held by shared_ptr-to-const so
  /// catalog entries can carry a spec without FleetSpec losing its
  /// value semantics.
  std::shared_ptr<const fault::FaultSpec> faults;

  /// A fleet over the generative road flow.
  [[nodiscard]] static FleetSpec road(std::size_t nodes, RoadWorkload road,
                                      core::Strategy strategy,
                                      double zeta_target_s) {
    FleetSpec spec;
    spec.nodes = nodes;
    spec.workload = std::move(road);
    spec.strategy = strategy;
    spec.zeta_target_s = zeta_target_s;
    return spec;
  }

  /// A fleet replaying a trace-catalog entry.
  [[nodiscard]] static FleetSpec trace_replay(std::size_t nodes,
                                              TraceWorkload trace,
                                              core::Strategy strategy,
                                              double zeta_target_s) {
    FleetSpec spec;
    spec.nodes = nodes;
    spec.workload = std::move(trace);
    spec.strategy = strategy;
    spec.zeta_target_s = zeta_target_s;
    return spec;
  }

  [[nodiscard]] const RoadWorkload* road_workload() const noexcept {
    return std::get_if<RoadWorkload>(&workload);
  }
  [[nodiscard]] const TraceWorkload* trace_workload() const noexcept {
    return std::get_if<TraceWorkload>(&workload);
  }
};

}  // namespace snipr::deploy
