#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "snipr/contact/process.hpp"
#include "snipr/contact/profile.hpp"
#include "snipr/contact/schedule.hpp"
#include "snipr/sim/distributions.hpp"
#include "snipr/sim/rng.hpp"

/// \file road_contacts.hpp
/// Correlated contact schedules for a multi-node road-side deployment.
///
/// The paper's motivating scenario (Fig. 1, Sec. I) is a *network* of
/// sparse sensor nodes, each visited by the same uncontrolled mobile
/// nodes. A vehicle entering the road at time t with speed v reaches the
/// node at position x after x/v and stays within communication range R
/// for a chord of 2R/v — so all nodes see the same diurnal rush hours,
/// shifted by their travel offsets and sharing per-vehicle speed. This
/// builder turns a vehicle flow into one ContactSchedule per node,
/// preserving those correlations (the single-node generators in
/// snipr::contact cannot).

namespace snipr::deploy {

/// One vehicle entering the road.
struct VehicleEntry {
  sim::TimePoint entry;  ///< time the vehicle passes position 0
  double speed_mps;      ///< constant along the road
  /// Position where the vehicle leaves the road; +inf = drives through.
  /// A vehicle exiting at e is in range of the node at x only while its
  /// position is below e, so a node with x − R ≥ e never sees it.
  double exit_m{std::numeric_limits<double>::infinity()};
};

/// The uncontrolled vehicle flow: entry times follow a per-slot arrival
/// profile (rush hours!), speeds are iid per vehicle.
struct VehicleFlow {
  contact::ArrivalProfile profile{contact::ArrivalProfile::roadside()};
  std::unique_ptr<sim::Distribution> speed_mps{
      std::make_unique<sim::FixedDistribution>(10.0)};
  /// Jitter applied to the entry intervals (kNormalTenth = paper's env).
  contact::IntervalJitter jitter{contact::IntervalJitter::kNormalTenth};
};

/// Materialise vehicle entries over [0, horizon).
[[nodiscard]] std::vector<VehicleEntry> materialize_vehicles(
    const VehicleFlow& flow, sim::Duration horizon, sim::Rng& rng);

/// Contact schedules for sensor nodes at `positions_m` along the road,
/// all with communication range `range_m`. A vehicle entering at t with
/// speed v is in range of the node at x over
///   [t + max(0, x − R)/v,  t + (x + R)/v).
/// Overlapping passes at one node (two vehicles in range together) are
/// merged into a single contact, honouring the reference model's
/// one-mobile-at-a-time assumption (Sec. II).
[[nodiscard]] std::vector<contact::ContactSchedule> build_road_schedules(
    const std::vector<double>& positions_m, double range_m,
    const std::vector<VehicleEntry>& vehicles);

/// Road schedules with carrier identity preserved: carriers[i][j] is the
/// index (into the vehicles vector) of the vehicle behind contact j of
/// node i. When overlapping passes merge into one contact, the merged
/// contact keeps the *first* pass's vehicle — the carrier the probing
/// handshake would reach first.
struct RoadContactPlan {
  std::vector<contact::ContactSchedule> schedules;
  std::vector<std::vector<std::uint32_t>> carriers;
};

/// Like build_road_schedules (identical schedules for an all-through
/// flow) but honouring per-vehicle exits and recording which vehicle
/// carries each contact — the contact plan the store-and-forward
/// collection pass routes data over.
[[nodiscard]] RoadContactPlan build_road_contact_plan(
    const std::vector<double>& positions_m, double range_m,
    const std::vector<VehicleEntry>& vehicles);

}  // namespace snipr::deploy
