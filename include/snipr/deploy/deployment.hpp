#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "snipr/contact/schedule.hpp"
#include "snipr/deploy/routing.hpp"
#include "snipr/fault/fault_plan.hpp"
#include "snipr/node/sensor_node.hpp"
#include "snipr/radio/link.hpp"

/// \file deployment.hpp
/// Multi-node experiment outcomes and the single-simulator runner.
///
/// N sensor nodes, each with its own channel (over its own contact
/// schedule), data buffer, budget and scheduler instance, all visited by
/// the same vehicle flow. Reports per-node and aggregate outcomes —
/// including the min/max fairness spread that a single-node study cannot
/// see. `run_deployment` is the historical single-shard entry point; the
/// sharded engine behind it lives in fleet_engine.hpp.

namespace snipr::deploy {

/// Per-node outcome over the run (means across complete epochs).
struct NodeOutcome {
  std::size_t node_index{0};
  std::string scheduler_name;
  std::size_t epochs{0};
  double mean_zeta_s{0.0};
  double mean_phi_s{0.0};
  double mean_bytes_uploaded{0.0};
  double mean_contacts_probed{0.0};
  double miss_ratio{0.0};
  double mean_delivery_latency_s{0.0};

  [[nodiscard]] double rho() const noexcept {
    return mean_zeta_s > 0.0 ? mean_phi_s / mean_zeta_s : 0.0;
  }
};

/// Whole-deployment outcome.
struct DeploymentOutcome {
  std::vector<NodeOutcome> nodes;
  double total_zeta_s{0.0};
  double total_phi_s{0.0};
  double total_bytes{0.0};
  double min_zeta_s{0.0};    ///< worst-served node
  double max_zeta_s{0.0};    ///< best-served node
  double mean_zeta_s{0.0};   ///< fleet mean of per-node ζ
  /// Population variance of per-node ζ (Welford; stable even for huge
  /// fleets of near-equal ζ, where a sum-of-squares formula cancels).
  double zeta_variance{0.0};
  double zeta_stddev_s{0.0};
  /// Jain's fairness index over per-node ζ (1 = perfectly even).
  double zeta_fairness{1.0};
  /// Store-and-forward collection results, present when the fleet ran
  /// with a RoutingSpec (upgrades the JSON schema to snipr.fleet.v2).
  std::optional<NetworkOutcome> network;
  /// Fault-plane counters, present when the fleet ran with an enabled
  /// fault::FaultSpec (upgrades the JSON schema to snipr.fleet.v3).
  std::optional<fault::ResilienceOutcome> resilience;
};

struct DeploymentConfig {
  node::SensorNodeConfig node;  ///< shared node configuration
  radio::LinkParams link;
  std::size_t epochs{14};
  std::uint64_t seed{1};
};

/// Factory producing one scheduler per node (owned by the runner for the
/// duration of the experiment). Must be safe to call concurrently from
/// shard worker threads; each call must return a fresh scheduler.
using SchedulerFactory =
    std::function<std::unique_ptr<node::Scheduler>(std::size_t node_index)>;

/// Snapshot one simulated node into its NodeOutcome row.
[[nodiscard]] NodeOutcome summarize_node(std::size_t node_index,
                                         const node::SensorNode& sensor,
                                         std::string scheduler_name,
                                         std::size_t total_contacts);

/// Recompute every aggregate field of `outcome` from its per-node rows,
/// in node order, with `stats::OnlineStats` (single Welford pass — never
/// a raw Σζ² that cancels catastrophically at fleet scale). Safe on an
/// empty outcome (leaves the zero/identity defaults).
void finalize_outcome(DeploymentOutcome& outcome);

/// Run a deployment: one sensor node per schedule, all in one simulator.
/// Equivalent to FleetEngine with a single shard.
[[nodiscard]] DeploymentOutcome run_deployment(
    std::vector<contact::ContactSchedule> schedules,
    const SchedulerFactory& make_scheduler, const DeploymentConfig& config);

}  // namespace snipr::deploy
