#pragma once

#include <string>
#include <vector>

#include "snipr/deploy/deployment.hpp"
#include "snipr/deploy/fleet.hpp"

/// \file fleet_engine.hpp
/// Sharded multi-threaded deployment engine.
///
/// `run_deployment` simulates every node of a fleet inside one
/// single-threaded `Simulator`, which tops out at a few dozen nodes: the
/// event heap holds the whole fleet (every pop pays log of the *fleet's*
/// pending events) and only one core works. The FleetEngine partitions
/// the fleet into shards, each owning its own `Simulator` over a
/// contiguous block of nodes, and fans the shards out across a
/// `core::ThreadPool`.
///
/// Determinism contract (the PR 1/PR 2 guarantee, extended to shards):
/// node i's RNG stream is forked from a root seeded with `config.seed`
/// in node order, *before* any partitioning — a pure function of
/// (seed, i). Nodes never share mutable state (each has its own channel,
/// buffer, budget and scheduler; shard simulators interleave their
/// events but the nodes cannot observe each other), and per-shard
/// NodeOutcomes are merged back in node order, then aggregated in one
/// `stats::OnlineStats` pass. The outcome — and `to_json`'s bytes — is
/// therefore identical for ANY shard and thread count.

namespace snipr::deploy {

struct FleetConfig {
  /// Node configuration, link, epochs and root seed (shared by shards).
  DeploymentConfig deployment{};
  /// Simulator partitions; 0 = max(hardware threads, nodes/16), capped
  /// at the node count. Purely a performance knob — results never
  /// depend on it. More shards than threads still helps: each shard's
  /// event heap covers only its own nodes, so pops sift shorter paths
  /// over a hotter working set.
  std::size_t shards{0};
  /// Worker threads; 0 = hardware concurrency. Capped at the shard count.
  std::size_t threads{0};
};

class FleetEngine {
 public:
  /// Run over pre-built schedules (node i runs schedules[i]). An enabled
  /// `faults` spec attaches one deterministic fault stream per node
  /// (fault::FaultPlan, forked in node order like the channel streams,
  /// so the outcome stays shard- and thread-count independent) and adds
  /// a `resilience` section to the outcome; null or disabled specs leave
  /// the run byte-identical to a fault-free one.
  [[nodiscard]] DeploymentOutcome run(
      std::vector<contact::ContactSchedule> schedules,
      const SchedulerFactory& make_scheduler, const FleetConfig& config,
      const fault::FaultSpec* faults = nullptr) const;

  /// Materialise `spec`'s road geometry and vehicle flow (one flow shared
  /// by every node, so contacts stay correlated across the fleet), build
  /// one scheduler per node from `spec.strategy` against `scenario`, and
  /// run. The vehicle-flow RNG stream is drawn after all per-node forks,
  /// so it is independent of every node stream.
  [[nodiscard]] DeploymentOutcome run(const core::RoadsideScenario& scenario,
                                      const FleetSpec& spec,
                                      const FleetConfig& config) const;

  /// Serialise an outcome as JSON: aggregates plus one compact row per
  /// node (`core::json::kFleetSchemaV1`), and — when the outcome carries
  /// a store-and-forward network section — the collection results under
  /// `"network"` with the schema bumped to `core::json::kFleetSchemaV2`;
  /// an outcome with a `resilience` section (fault plan attached) bumps
  /// it again to `core::json::kFleetSchemaV3`. Deterministic: same
  /// outcome, same bytes — and outcomes are shard-count-independent, so
  /// this is what the fleet golden corpus pins.
  [[nodiscard]] static std::string to_json(const DeploymentOutcome& outcome);

 private:
  /// `run`, with each node's probed-contact log exported through
  /// `probed` (resized to the fleet; slot i is node i's log) — the
  /// session list the store-and-forward collection pass replays — and
  /// node i wired to `faults->node(i)` when a fault plan is attached.
  [[nodiscard]] DeploymentOutcome run_with_probes(
      std::vector<contact::ContactSchedule> schedules,
      const SchedulerFactory& make_scheduler, const FleetConfig& config,
      std::vector<std::vector<node::ProbedContactRecord>>* probed,
      fault::FaultPlan* faults) const;
};

/// Node/link configuration for a catalog-style fleet run: Ton and link
/// from the scenario, epoch length from the flow profile, budget Φmax
/// and the sensing rate implied by `spec.zeta_target_s`.
[[nodiscard]] DeploymentConfig make_fleet_deployment_config(
    const core::RoadsideScenario& scenario, const FleetSpec& spec,
    double phi_max_s, std::size_t epochs, std::uint64_t seed);

}  // namespace snipr::deploy
