#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "snipr/core/scenario.hpp"
#include "snipr/deploy/fleet.hpp"
#include "snipr/deploy/fleet_engine.hpp"

/// \file fleet_streaming.hpp
/// Bounded-memory streaming fleet runs.
///
/// `FleetEngine::run` materialises every node's contact schedule up
/// front and returns one NodeOutcome row per node — O(fleet) memory
/// twice over, which a million-node run cannot afford. The streaming
/// path processes the fleet shard by shard: each shard builds the
/// schedules for *its own* node range just before simulating it (from
/// the shared vehicle flow, which is materialised once), folds its
/// nodes' results into scalar accumulators (Welford mean/variance via
/// `stats::OnlineStats`, quantiles via `stats::QuantileSketch`) and
/// frees everything before the next batch starts. Peak memory is the
/// vehicle flow plus one batch of shards, independent of fleet size.
///
/// Determinism matches the run() contract: node i's RNG stream is a
/// pure function of (seed, i); per-node values are folded into the
/// accumulators in node order regardless of shard/thread count, so the
/// summary — and its JSON — is byte-identical for any partitioning.
///
/// Long runs can checkpoint: after each shard batch the accumulator
/// state is written (atomically) to `StreamingOptions::checkpoint_path`,
/// and a later call with the same configuration resumes from the last
/// completed batch, bit-identical to an uninterrupted run.

namespace snipr::deploy {

/// Aggregate outcome of a streaming fleet run (the whole point: no
/// per-node vector).
struct FleetSummary {
  std::uint64_t nodes{0};
  std::uint64_t epochs{0};
  std::uint64_t shards{0};
  double total_zeta_s{0.0};
  double total_phi_s{0.0};
  double total_bytes{0.0};
  double min_zeta_s{0.0};
  double max_zeta_s{0.0};
  double mean_zeta_s{0.0};
  double zeta_variance{0.0};
  double zeta_stddev_s{0.0};
  /// Jain's fairness index over per-node ζ (1 = perfectly even).
  double zeta_fairness{1.0};
  /// Per-node mean-ζ quantiles from the merged sketch (1% relative
  /// error).
  double zeta_p50_s{0.0};
  double zeta_p90_s{0.0};
  double zeta_p99_s{0.0};
  /// Probed sessions summed over the whole fleet and run (exact).
  std::uint64_t contacts_probed{0};
  /// Discrete events executed across every shard simulator.
  std::uint64_t events_executed{0};
};

struct StreamingOptions {
  /// Checkpoint file; empty disables checkpointing.
  std::string checkpoint_path;
  /// Shards simulated per batch (between checkpoint writes; also the
  /// number of shards whose schedules coexist in memory). 0 = the
  /// worker-thread count.
  std::size_t batch_shards{0};
  /// Process at most this many shards in this call, then checkpoint and
  /// return nullopt (time-slicing a huge run). 0 = run to completion.
  std::size_t max_shards{0};
};

/// Run `spec` as a streaming fleet. Returns the summary, or nullopt when
/// `options.max_shards` stopped the run early (state saved to the
/// checkpoint). Store-and-forward routing is rejected: replaying
/// per-contact sessions is exactly the per-node state streaming exists
/// to avoid.
[[nodiscard]] std::optional<FleetSummary> run_streaming_fleet(
    const core::RoadsideScenario& scenario, const FleetSpec& spec,
    const FleetConfig& config, const StreamingOptions& options = {});

/// Deterministic JSON for a summary (`snipr.fleet_summary.v1`).
[[nodiscard]] std::string to_json(const FleetSummary& summary);

}  // namespace snipr::deploy
