#pragma once

#include <string>
#include <variant>

#include "snipr/contact/process.hpp"

/// \file workload.hpp
/// The fleet workload variants.
///
/// A fleet's contact workload is exactly one of two things: a *road*
/// workload (geometry plus a shared generative vehicle flow — the
/// paper's Fig. 1 setting) or a *trace* workload (every node replays its
/// own rotated slice of one recorded or generated corpus). The old
/// `FleetSpec` encoded the choice implicitly — an empty-or-not `trace`
/// string gating which of a dozen flat fields were meaningful — which
/// is precisely the accretion this variant replaces: each alternative
/// now carries only the fields that exist for it, and the engine
/// dispatches with std::visit instead of string sniffing.

namespace snipr::deploy {

/// Generative road workload: N nodes along one road, all visited by the
/// same uncontrolled vehicle flow (contacts stay correlated across the
/// fleet, shifted by travel offsets).
struct RoadWorkload {
  /// Position of node 0 (metres from the road entry) and the uniform
  /// spacing between consecutive nodes.
  double first_position_m{50.0};
  double spacing_m{300.0};
  /// Communication range shared by every node.
  double range_m{10.0};

  /// Jitter applied to the flow's entry intervals.
  contact::IntervalJitter jitter{contact::IntervalJitter::kNormalTenth};

  /// Per-vehicle speed: truncated normal, or fixed when stddev <= 0.
  double speed_mean_mps{10.0};
  double speed_stddev_mps{1.5};
  double speed_min_mps{2.0};

  /// Fraction of vehicles that traverse the whole road. The rest exit
  /// early at a position drawn uniformly over the road span (their own
  /// stream, forked after the flow — 1.0 draws nothing, so a pure
  /// through-flow is bit-identical to the pre-exit engine). Early exits
  /// are what make store-and-forward relaying (deploy::RoutingSpec)
  /// non-trivial: a partial carrier must hand data off to a node for a
  /// later vehicle to ferry onward.
  double through_fraction{1.0};
};

/// Trace-replay workload: node i replays the named `trace::TraceCatalog`
/// entry, phase-rotated by i * stagger_s within the trace span (tiled at
/// the trace entry's own epoch) and perturbed per contact by
/// jitter_stddev_s from the node's own RNG stream. A *heterogeneous*
/// fleet: every node sees a different slice of one recorded workload.
struct TraceWorkload {
  std::string trace;  ///< trace::TraceCatalog entry name
  double stagger_s{0.0};
  double jitter_stddev_s{0.0};
  /// Resolution directory for a file-backed trace entry. Empty = the
  /// runtime default ($SNIPR_TRACE_DATA_DIR, then the compiled-in
  /// corpus dir); a catalog-pinned fleet must set
  /// trace::TraceCatalog::compiled_data_dir() so an environment override
  /// cannot swap the corpus behind a golden-pinned name.
  std::string data_dir;
};

using Workload = std::variant<RoadWorkload, TraceWorkload>;

[[nodiscard]] inline bool is_road(const Workload& w) noexcept {
  return std::holds_alternative<RoadWorkload>(w);
}
[[nodiscard]] inline bool is_trace(const Workload& w) noexcept {
  return std::holds_alternative<TraceWorkload>(w);
}

}  // namespace snipr::deploy
