#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

/// \file routing.hpp
/// Store-and-forward routing configuration and network-level outcomes.
///
/// With a RoutingSpec attached to a fleet, detected contacts stop being
/// mere probing events: the data a node sensed since its last service is
/// handed to the visiting vehicle (bounded by link rate × residual
/// contact time), ferried down the road, and — for vehicles that exit
/// before the sink — deposited at a relay node for a later carrier. The
/// collection pass that executes this plan is deterministic and
/// single-threaded over the probed sessions of the sharded engine, so
/// the fleet output stays byte-identical at any shard/thread count (the
/// property the multihop goldens and
/// property_multihop_determinism_test pin).

namespace snipr::deploy {

/// What a full node store does with newly sensed data.
enum class DropPolicy : std::uint8_t {
  /// Drop the incoming (newest) data; the buffered backlog is preserved.
  kTailDrop,
  /// Evict the oldest buffered parcels to make room for fresh data.
  kOldestFirst,
};

/// How a node decides whether to hand buffered data to a vehicle (and a
/// partial vehicle whether to deposit its cargo at a node).
enum class ForwardingPolicy : std::uint8_t {
  /// Greedy-to-sink baseline: hand data only to a vehicle that will
  /// itself reach the sink; carriers never deposit. Degenerates to pure
  /// two-hop (node → through vehicle → sink) collection.
  kGreedySink,
  /// Wang-style time-constraint/cost metric (arXiv:1606.08936): every
  /// custodian carries a cost-to-sink estimate — hops × est_hop_delay_s
  /// for a node, residual travel time plus interpolated relay cost plus
  /// a handoff-risk penalty for a vehicle — and data flows toward the
  /// cheaper custodian at each contact. Parcels carry a delivery
  /// deadline (generation + parcel_ttl_s) and expire in place.
  kTimeCost,
};

const char* to_string(DropPolicy policy) noexcept;
const char* to_string(ForwardingPolicy policy) noexcept;

/// Store-and-forward configuration for a fleet. Attached to a FleetSpec
/// it upgrades the outcome to `snipr.fleet.v2` (a "network" section);
/// absent, the fleet runs the classic N-independent-probing experiment
/// and emits v1 unchanged.
struct RoutingSpec {
  /// Node index whose position hosts the collection sink (an always-on
  /// base station co-located with that node, which therefore generates
  /// no data of its own). Unset = a virtual sink just past the far end
  /// of the road, so every node generates and every through vehicle
  /// delivers on exit.
  std::optional<std::size_t> sink_node;

  /// Capacity of each node's sensed-data store, bytes. 0 = unlimited.
  double node_store_bytes{0.0};
  /// Capacity of each vehicle's cargo hold, bytes. 0 = unlimited.
  double vehicle_store_bytes{0.0};

  DropPolicy drop_policy{DropPolicy::kTailDrop};
  ForwardingPolicy forwarding{ForwardingPolicy::kGreedySink};

  /// Delivery deadline per parcel, seconds from generation; 0 = none.
  /// Only kTimeCost enforces it (greedy has no deadline notion).
  double parcel_ttl_s{0.0};

  /// kTimeCost estimate of one relay hop's delay (node dwell + next
  /// carrier wait), seconds.
  double est_hop_delay_s{600.0};
  /// kTimeCost penalty added to a non-through vehicle's cost estimate:
  /// its cargo must survive one more custody handoff, which risks drops
  /// and adds dwell.
  double handoff_risk_s{300.0};
};

/// Per-node rows of the network outcome.
struct NodeNetworkOutcome {
  std::size_t node_index{0};
  double generated_bytes{0.0};  ///< sensed into the store
  /// Bytes generated *here* that reached the sink (any path).
  double origin_delivered_bytes{0.0};
  double dropped_bytes{0.0};  ///< store overflow (either policy)
  double pickup_bytes{0.0};   ///< handed to vehicles here
  double deposit_bytes{0.0};  ///< deposited by vehicles here
  double max_store_bytes{0.0};
  /// Time-weighted mean store occupancy over the horizon (exact
  /// piecewise-linear integral between custody events).
  double mean_store_bytes{0.0};
  /// Learned hops-to-sink (vehicle-beaconed min; 0 = sink itself,
  /// 255 = never learned).
  std::uint8_t hops_to_sink{255};
};

/// Network-level outcome of the collection pass: the Fig. 1 questions —
/// how much sensed data reached the sink, how stale, over how many hops,
/// and what the buffers did — that N independent probing outcomes
/// cannot answer.
struct NetworkOutcome {
  double generated_bytes{0.0};
  double delivered_bytes{0.0};
  /// delivered / generated (0 when nothing was generated).
  double delivery_ratio{0.0};

  /// End-to-end latency (generation → sink arrival) over delivered
  /// bytes, byte-weighted, seconds.
  double latency_mean_s{0.0};
  double latency_p50_s{0.0};
  double latency_p90_s{0.0};
  double latency_p99_s{0.0};

  /// Custody transfers per delivered byte (byte-weighted).
  double mean_hops{0.0};
  std::size_t max_hops{0};

  std::size_t pickups{0};     ///< node → vehicle transfers
  std::size_t deposits{0};    ///< vehicle → node transfers
  std::size_t deliveries{0};  ///< vehicle → sink transfers
  double pickup_bytes{0.0};
  double deposit_bytes{0.0};

  /// Byte conservation: generated == delivered + dropped + expired +
  /// lost_in_transit + residual (checked by the tests).
  double dropped_bytes{0.0};  ///< node-store overflow
  double expired_bytes{0.0};  ///< kTimeCost TTL expiry
  /// Still aboard vehicles that exited before the sink at horizon end.
  double lost_in_transit_bytes{0.0};
  /// Still buffered at nodes or aboard en-route vehicles at horizon end.
  double residual_bytes{0.0};

  std::vector<NodeNetworkOutcome> nodes;
};

}  // namespace snipr::deploy
