#pragma once

#include <memory>
#include <stdexcept>

#include "snipr/sim/rng.hpp"

/// \file distributions.hpp
/// Portable sampling distributions used by contact processes.
///
/// All samplers draw only via Rng, so a fixed seed yields identical traces
/// on every platform. Distributions over durations are expressed in seconds
/// (double) and converted to Duration at the call site.

namespace snipr::sim {

/// Interface for a positive-valued distribution (contact lengths, intervals).
class Distribution {
 public:
  virtual ~Distribution() = default;
  Distribution() = default;
  Distribution(const Distribution&) = delete;
  Distribution& operator=(const Distribution&) = delete;
  Distribution(Distribution&&) = delete;
  Distribution& operator=(Distribution&&) = delete;

  /// Draw one sample.
  [[nodiscard]] virtual double sample(Rng& rng) const = 0;
  /// Analytic mean, used by planners that size duty-cycles.
  [[nodiscard]] virtual double mean() const = 0;
  /// Deep copy (distributions are cheap value-like objects behind the
  /// interface; cloning lets processes be copied for parameter sweeps).
  [[nodiscard]] virtual std::unique_ptr<Distribution> clone() const = 0;
};

/// Always returns the same value.
class FixedDistribution final : public Distribution {
 public:
  explicit FixedDistribution(double value);
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double mean() const override { return value_; }
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

 private:
  double value_;
};

/// Normal(mean, stddev) truncated to (lo, +inf) by resampling.
///
/// The paper's simulations (Sec. VII-A.2) draw both Tcontact and Tinterval
/// from a normal with stddev = mean/10; truncation keeps samples positive.
class TruncatedNormalDistribution final : public Distribution {
 public:
  TruncatedNormalDistribution(double mean, double stddev, double lo = 0.0);
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double mean() const override { return mean_; }
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

 private:
  double mean_;
  double stddev_;
  double lo_;
};

/// Exponential with the given mean (footnote 1 of the paper studies
/// exponentially distributed contact lengths).
class ExponentialDistribution final : public Distribution {
 public:
  explicit ExponentialDistribution(double mean);
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double mean() const override { return mean_; }
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

 private:
  double mean_;
};

/// Lognormal parameterised by its (arithmetic) mean and the sigma of the
/// underlying normal. Used in distribution-robustness ablations.
class LognormalDistribution final : public Distribution {
 public:
  LognormalDistribution(double mean, double sigma);
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double mean() const override { return mean_; }
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

 private:
  double mean_;
  double sigma_;
  double mu_;  // location of the underlying normal
};

/// Standard-normal variate via the Marsaglia polar method (portable).
[[nodiscard]] double standard_normal(Rng& rng) noexcept;

}  // namespace snipr::sim
