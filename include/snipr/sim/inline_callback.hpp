#pragma once

#include <cstddef>
// snipr-lint: allow(hotpath-std-function) this header is the
// InlineCallback definition itself; <functional> is pulled in only for
// std::bad_function_call, never for std::function storage.
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

/// \file inline_callback.hpp
/// Fixed-capacity type-erased callable for the event-loop hot path.
///
/// `std::function` heap-allocates any closure beyond its small-buffer
/// size (16 bytes on libstdc++/libc++) — and the transfer-completion
/// closure in SensorNode::begin_transfer captures ~56 bytes, so every
/// simulated event used to pay a malloc/free pair. InlineCallback embeds
/// the closure directly in the owner (an EventQueue slot), type-erasing
/// only through a static vtable of move/invoke/destroy thunks; a closure
/// that does not fit the capacity is rejected at compile time, so growing
/// a capture list can never silently reintroduce the allocation.

namespace snipr::sim {

/// Move-only owning wrapper over any callable `void()` whose size fits
/// `Capacity` bytes. Construction from a callable is implicit, like
/// `std::function`, so call sites keep passing plain lambdas.
template <std::size_t Capacity>
class InlineCallback {
 public:
  InlineCallback() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineCallback>)
  // Implicit by design: call sites pass plain lambdas, mirroring the
  // std::function converting constructor this type replaces.
  InlineCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "closure exceeds InlineCallback capacity: shrink the "
                  "capture list or raise the EventQueue callback capacity");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "closure is over-aligned for InlineCallback storage");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "closures must be nothrow-movable (heap sifts move them)");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
    vtable_ = vtable_for<Fn>();
  }

  InlineCallback(InlineCallback&& other) noexcept : vtable_{other.vtable_} {
    if (vtable_ != nullptr) {
      vtable_->relocate(storage_, other.storage_);
      other.vtable_ = nullptr;
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      vtable_ = other.vtable_;
      if (vtable_ != nullptr) {
        vtable_->relocate(storage_, other.storage_);
        other.vtable_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  /// Destroy the held callable, returning to the empty state.
  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vtable_ != nullptr;
  }

  /// Invoke the held callable. Like std::function, calling an empty (or
  /// moved-from) callback throws std::bad_function_call — a diagnosable
  /// failure instead of a null vtable call; the predictable branch costs
  /// nothing measurable on the hot path.
  void operator()() {
    if (vtable_ == nullptr) [[unlikely]] {
      throw std::bad_function_call{};
    }
    vtable_->invoke(storage_);
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    /// Move-construct dst from src, then destroy src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  [[nodiscard]] static const VTable* vtable_for() noexcept {
    static constexpr VTable table{
        [](void* p) { (*static_cast<Fn*>(p))(); },
        [](void* dst, void* src) noexcept {
          ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
          static_cast<Fn*>(src)->~Fn();
        },
        [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); }};
    return &table;
  }

  alignas(std::max_align_t) std::byte storage_[Capacity];
  const VTable* vtable_{nullptr};
};

}  // namespace snipr::sim
