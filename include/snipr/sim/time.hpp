#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>

/// \file time.hpp
/// Strongly typed simulation time.
///
/// The simulator keeps time as signed 64-bit microsecond counts. Integer
/// ticks make event ordering exact and runs bit-reproducible; doubles are
/// only produced at the API edge (`to_seconds`) for reporting.

namespace snipr::sim {

/// A signed span of simulated time with microsecond resolution.
class Duration {
 public:
  constexpr Duration() noexcept = default;

  /// Named constructors. Fractional inputs round to the nearest microsecond.
  [[nodiscard]] static constexpr Duration microseconds(
      std::int64_t us) noexcept {
    return Duration{us};
  }
  [[nodiscard]] static constexpr Duration milliseconds(
      std::int64_t ms) noexcept {
    return Duration{ms * 1000};
  }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t s) noexcept {
    return Duration{s * 1'000'000};
  }
  [[nodiscard]] static constexpr Duration seconds(int s) noexcept {
    return seconds(static_cast<std::int64_t>(s));
  }
  [[nodiscard]] static Duration seconds(double s) noexcept {
    return Duration{static_cast<std::int64_t>(std::llround(s * 1e6))};
  }
  [[nodiscard]] static constexpr Duration minutes(std::int64_t m) noexcept {
    return Duration{m * 60 * 1'000'000};
  }
  [[nodiscard]] static constexpr Duration hours(std::int64_t h) noexcept {
    return Duration{h * 3600 * 1'000'000};
  }
  [[nodiscard]] static constexpr Duration zero() noexcept {
    return Duration{0};
  }
  [[nodiscard]] static constexpr Duration max() noexcept {
    return Duration{INT64_MAX};
  }

  /// Raw microsecond count.
  [[nodiscard]] constexpr std::int64_t count() const noexcept { return us_; }
  /// Lossy conversion for reporting.
  [[nodiscard]] constexpr double to_seconds() const noexcept {
    return static_cast<double>(us_) / 1e6;
  }

  [[nodiscard]] constexpr bool is_zero() const noexcept { return us_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const noexcept { return us_ < 0; }

  constexpr auto operator<=>(const Duration&) const noexcept = default;

  constexpr Duration& operator+=(Duration rhs) noexcept {
    us_ += rhs.us_;
    return *this;
  }
  constexpr Duration& operator-=(Duration rhs) noexcept {
    us_ -= rhs.us_;
    return *this;
  }

  [[nodiscard]] friend constexpr Duration operator+(Duration a,
                                                    Duration b) noexcept {
    return Duration{a.us_ + b.us_};
  }
  [[nodiscard]] friend constexpr Duration operator-(Duration a,
                                                    Duration b) noexcept {
    return Duration{a.us_ - b.us_};
  }
  [[nodiscard]] friend constexpr Duration operator-(Duration a) noexcept {
    return Duration{-a.us_};
  }
  [[nodiscard]] friend Duration operator*(Duration a, double k) noexcept {
    return Duration{static_cast<std::int64_t>(
        std::llround(static_cast<double>(a.us_) * k))};
  }
  [[nodiscard]] friend Duration operator*(double k, Duration a) noexcept {
    return a * k;
  }
  [[nodiscard]] friend constexpr Duration operator*(Duration a,
                                                    std::int64_t k) noexcept {
    return Duration{a.us_ * k};
  }
  [[nodiscard]] friend constexpr Duration operator*(Duration a,
                                                    int k) noexcept {
    return a * static_cast<std::int64_t>(k);
  }
  [[nodiscard]] friend constexpr Duration operator/(Duration a,
                                                    std::int64_t k) noexcept {
    return Duration{a.us_ / k};
  }
  /// Ratio of two spans (e.g. duty-cycle = on / cycle).
  [[nodiscard]] friend constexpr double operator/(Duration a,
                                                  Duration b) noexcept {
    return static_cast<double>(a.us_) / static_cast<double>(b.us_);
  }

  friend std::ostream& operator<<(std::ostream& os, Duration d) {
    return os << d.to_seconds() << "s";
  }

 private:
  constexpr explicit Duration(std::int64_t us) noexcept : us_{us} {}
  std::int64_t us_{0};
};

/// An absolute instant on the simulation clock (microseconds since start).
class TimePoint {
 public:
  constexpr TimePoint() noexcept = default;

  [[nodiscard]] static constexpr TimePoint zero() noexcept {
    return TimePoint{};
  }
  [[nodiscard]] static constexpr TimePoint max() noexcept {
    return TimePoint{Duration::max()};
  }
  [[nodiscard]] static constexpr TimePoint at(Duration since_start) noexcept {
    return TimePoint{since_start};
  }

  /// Elapsed time since the simulation origin.
  [[nodiscard]] constexpr Duration since_origin() const noexcept { return d_; }
  [[nodiscard]] constexpr std::int64_t count() const noexcept {
    return d_.count();
  }
  [[nodiscard]] constexpr double to_seconds() const noexcept {
    return d_.to_seconds();
  }

  constexpr auto operator<=>(const TimePoint&) const noexcept = default;

  constexpr TimePoint& operator+=(Duration d) noexcept {
    d_ += d;
    return *this;
  }
  constexpr TimePoint& operator-=(Duration d) noexcept {
    d_ -= d;
    return *this;
  }

  [[nodiscard]] friend constexpr TimePoint operator+(TimePoint t,
                                                     Duration d) noexcept {
    return TimePoint{t.d_ + d};
  }
  [[nodiscard]] friend constexpr TimePoint operator+(Duration d,
                                                     TimePoint t) noexcept {
    return t + d;
  }
  [[nodiscard]] friend constexpr TimePoint operator-(TimePoint t,
                                                     Duration d) noexcept {
    return TimePoint{t.d_ - d};
  }
  [[nodiscard]] friend constexpr Duration operator-(TimePoint a,
                                                    TimePoint b) noexcept {
    return a.d_ - b.d_;
  }

  friend std::ostream& operator<<(std::ostream& os, TimePoint t) {
    return os << "t=" << t.to_seconds() << "s";
  }

 private:
  constexpr explicit TimePoint(Duration d) noexcept : d_{d} {}
  Duration d_{};
};

}  // namespace snipr::sim
