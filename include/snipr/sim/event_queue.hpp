#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_set>
#include <vector>

#include "snipr/sim/time.hpp"

/// \file event_queue.hpp
/// Pending-event set for the discrete-event engine.

namespace snipr::sim {

/// Opaque handle identifying a scheduled event; usable for cancellation.
using EventId = std::uint64_t;

/// Invalid sentinel (never returned by schedule()).
inline constexpr EventId kInvalidEventId = 0;

/// Time-ordered queue of callbacks with O(log n) schedule/pop and O(1)
/// amortised cancellation. Ties at equal timestamps run in schedule order
/// (FIFO), which keeps runs deterministic.
///
/// The store is a flat binary min-heap over (timestamp, id) with the
/// callback inline in each entry, so a pop is one sift-down — no side
/// map lookup. cancel() only retires the id from the live set; the heap
/// entry stays behind as a tombstone and is dropped lazily at the head,
/// or swept in bulk whenever tombstones outnumber live entries (so a
/// cancel-heavy workload — schedule/cancel in a tight loop — keeps the
/// heap within a constant factor of the live count instead of growing
/// without bound).
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` at absolute time `at`. Returns a handle for cancel().
  EventId schedule(TimePoint at, Callback fn);

  /// Cancel a pending event. Returns false if the event already ran,
  /// was already cancelled, or was never scheduled.
  bool cancel(EventId id);

  /// Timestamp of the earliest pending (non-cancelled) event.
  [[nodiscard]] std::optional<TimePoint> next_time() const;

  /// True when no live events remain.
  [[nodiscard]] bool empty() const;
  /// Number of live (non-cancelled) events.
  [[nodiscard]] std::size_t size() const noexcept { return live_.size(); }
  /// Heap entries currently held, including cancelled tombstones awaiting
  /// compaction. Tombstones only arise from cancel(), which re-checks the
  /// compaction condition, so every cancel leaves the heap at most
  /// max(2 * size(), compaction floor); pops in between only shrink it.
  /// Exposed so tests can pin the no-leak guarantee.
  [[nodiscard]] std::size_t heap_size() const noexcept { return heap_.size(); }

  /// Pop the earliest event and return it; nullopt when empty.
  struct Popped {
    TimePoint at;
    EventId id{kInvalidEventId};
    Callback fn;
  };
  [[nodiscard]] std::optional<Popped> pop();

 private:
  struct Entry {
    TimePoint at;
    EventId id;
    Callback fn;
  };

  /// Min-heap order: earliest timestamp first, FIFO among equal stamps.
  static bool before(const Entry& a, const Entry& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    return a.id < b.id;
  }

  void sift_up(std::size_t i) const;
  void sift_down(std::size_t i) const;
  /// Remove the root entry (sift the last entry down into its place).
  void remove_root() const;
  /// Drop tombstones sitting at the heap head.
  void drop_cancelled_head() const;
  /// Sweep every tombstone and re-heapify when they outnumber live
  /// entries (and the heap is big enough for the sweep to matter).
  void maybe_compact();

  // The heap is mutable so const observers (next_time) can shed
  // tombstoned heads they encounter, exactly like the lazy-deletion
  // priority_queue this replaces.
  mutable std::vector<Entry> heap_;
  // Ids of live (scheduled, not cancelled, not popped) events. An entry
  // in heap_ is a tombstone iff its id is no longer in this set.
  std::unordered_set<EventId> live_;
  EventId next_id_{1};
};

}  // namespace snipr::sim
