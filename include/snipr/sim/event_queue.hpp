#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "snipr/sim/inline_callback.hpp"
#include "snipr/sim/time.hpp"

/// \file event_queue.hpp
/// Pending-event set for the discrete-event engine.

namespace snipr::sim {

/// Opaque handle identifying a scheduled event; usable for cancellation.
/// Packs a slot index (low 32 bits) and that slot's generation at
/// schedule time (high 32 bits), so a handle outliving its event can
/// never cancel a newer event that happens to reuse the slot.
using EventId = std::uint64_t;

/// Invalid sentinel (never returned by schedule(); generations start at
/// 1, so every real id has a non-zero high half).
inline constexpr EventId kInvalidEventId = 0;

/// Bytes of inline storage per event callback. Sized for the fattest
/// closure on the hot path (SensorNode::begin_transfer's completion,
/// ~56 bytes); anything larger fails the InlineCallback static_assert.
inline constexpr std::size_t kEventCallbackCapacity = 64;

/// Time-ordered queue of callbacks with O(log n) schedule/pop and O(1)
/// cancellation, allocation-free in steady state. Ties at equal
/// timestamps run in schedule order (FIFO), which keeps runs
/// deterministic.
///
/// Callbacks live in a flat slot array (`slots_`), inline via
/// InlineCallback — never on the heap. A schedule takes a slot from the
/// free list (or grows the array), stamps it with its current
/// generation, and pushes a 24-byte (timestamp, sequence, slot,
/// generation) entry onto a flat binary min-heap; sifts therefore move
/// small POD entries, not closures. Liveness is a generation compare —
/// a heap entry is a tombstone iff its generation no longer matches its
/// slot's — replacing the node-allocating `unordered_set` the queue
/// used to carry. cancel() retires the slot and leaves the heap entry
/// behind as a tombstone, dropped lazily at the head or swept in bulk
/// whenever tombstones outnumber live entries (so a cancel-heavy
/// workload keeps the heap within a constant factor of the live count).
///
/// Generations wrap at 2^32; a stale handle could alias only after a
/// single slot is reused four billion times while the handle is held,
/// which no workload approaches between compactions.
class EventQueue {
 public:
  using Callback = InlineCallback<kEventCallbackCapacity>;

  /// Schedule `fn` at absolute time `at`. Returns a handle for cancel().
  EventId schedule(TimePoint at, Callback fn);

  /// Cancel a pending event. Returns false if the event already ran,
  /// was already cancelled, or was never scheduled.
  bool cancel(EventId id);

  /// Timestamp of the earliest pending (non-cancelled) event.
  [[nodiscard]] std::optional<TimePoint> next_time() const;

  /// True when no live events remain.
  [[nodiscard]] bool empty() const { return live_ == 0; }
  /// Number of live (non-cancelled) events.
  [[nodiscard]] std::size_t size() const noexcept { return live_; }
  /// Heap entries currently held, including cancelled tombstones awaiting
  /// compaction. Tombstones only arise from cancel(), which re-checks the
  /// compaction condition, so every cancel leaves the heap at most
  /// max(2 * size(), compaction floor); pops in between only shrink it.
  /// Exposed so tests can pin the no-leak guarantee.
  [[nodiscard]] std::size_t heap_size() const noexcept { return heap_.size(); }

  /// Pop the earliest event and return it; nullopt when empty.
  struct Popped {
    TimePoint at;
    EventId id{kInvalidEventId};
    Callback fn;
  };
  [[nodiscard]] std::optional<Popped> pop();

 private:
  /// Callback storage cell, reused across events via the free list. The
  /// generation counts retirements: a heap entry scheduled against an
  /// older generation is a tombstone.
  struct Slot {
    Callback fn;
    std::uint32_t generation{1};
  };

  /// 24-byte POD heap entry; `seq` is a global monotone schedule counter
  /// providing the FIFO tie-break (slot indices recycle, so they cannot).
  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };

  /// Min-heap order: earliest timestamp first, FIFO among equal stamps.
  static bool before(const Entry& a, const Entry& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  [[nodiscard]] static EventId pack(std::uint32_t generation,
                                    std::uint32_t slot) noexcept {
    return (static_cast<EventId>(generation) << 32) | slot;
  }

  [[nodiscard]] bool stale(const Entry& e) const noexcept {
    return slots_[e.slot].generation != e.generation;
  }

  /// Release a slot's callback, bump its generation and recycle it.
  void retire(std::uint32_t slot);

  void sift_up(std::size_t i) const;
  void sift_down(std::size_t i) const;
  /// Remove the root entry (sift the last entry down into its place).
  void remove_root() const;
  /// Drop tombstones sitting at the heap head.
  void drop_stale_head() const;
  /// Sweep every tombstone and re-heapify when they outnumber live
  /// entries (and the heap is big enough for the sweep to matter).
  void maybe_compact();

  // The heap is mutable so const observers (next_time) can shed
  // tombstoned heads they encounter, exactly like the lazy-deletion
  // priority_queue this replaces. Slots are never touched from const
  // paths.
  mutable std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::uint64_t next_seq_{1};
  std::size_t live_{0};
};

}  // namespace snipr::sim
