#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "snipr/sim/time.hpp"

/// \file event_queue.hpp
/// Pending-event set for the discrete-event engine.

namespace snipr::sim {

/// Opaque handle identifying a scheduled event; usable for cancellation.
using EventId = std::uint64_t;

/// Invalid sentinel (never returned by schedule()).
inline constexpr EventId kInvalidEventId = 0;

/// Time-ordered queue of callbacks with O(log n) schedule/pop and
/// O(1) lazy cancellation. Ties at equal timestamps run in schedule order
/// (FIFO), which keeps runs deterministic.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` at absolute time `at`. Returns a handle for cancel().
  EventId schedule(TimePoint at, Callback fn);

  /// Cancel a pending event. Returns false if the event already ran,
  /// was already cancelled, or was never scheduled.
  bool cancel(EventId id);

  /// Timestamp of the earliest pending (non-cancelled) event.
  [[nodiscard]] std::optional<TimePoint> next_time() const;

  /// True when no live events remain.
  [[nodiscard]] bool empty() const;
  /// Number of live (non-cancelled) events.
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  /// Pop the earliest event and return it; nullopt when empty.
  struct Popped {
    TimePoint at;
    EventId id{kInvalidEventId};
    Callback fn;
  };
  [[nodiscard]] std::optional<Popped> pop();

 private:
  struct Entry {
    TimePoint at;
    EventId id;
    bool operator>(const Entry& rhs) const noexcept {
      if (at != rhs.at) return at > rhs.at;
      return id > rhs.id;  // FIFO among equal timestamps
    }
  };

  void drop_cancelled_head() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  // id -> callback; erased on cancel or pop. Present iff the event is live.
  std::unordered_map<EventId, Callback> live_callbacks_;
  EventId next_id_{1};
  std::size_t live_{0};
};

}  // namespace snipr::sim
