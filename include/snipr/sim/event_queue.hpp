#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "snipr/sim/inline_callback.hpp"
#include "snipr/sim/time.hpp"

/// \file event_queue.hpp
/// Pending-event set for the discrete-event engine.

namespace snipr::sim {

/// Opaque handle identifying a scheduled event; usable for cancellation.
/// Packs a slot index (low 32 bits) and that slot's generation at
/// schedule time (high 32 bits), so a handle outliving its event can
/// never cancel a newer event that happens to reuse the slot.
using EventId = std::uint64_t;

/// Invalid sentinel (never returned by schedule(); generations start at
/// 1 and a wrapping slot skips 0, so every real id has a non-zero high
/// half).
inline constexpr EventId kInvalidEventId = 0;

/// Bytes of inline storage per event callback. Sized for the fattest
/// closure on the hot path (SensorNode::begin_transfer's completion,
/// ~56 bytes); anything larger fails the InlineCallback static_assert.
inline constexpr std::size_t kEventCallbackCapacity = 64;

/// Time-ordered queue of callbacks with O(1) schedule/pop/cancel for the
/// near-future-dominated event mix, allocation-free in steady state.
/// Ties at equal timestamps run in schedule order (FIFO), which keeps
/// runs deterministic.
///
/// Internally a hierarchical timing wheel (Varghese–Lauck), laid out as
/// a "hierarchical clock": `kLevels` levels of `kBucketsPerLevel`
/// buckets, one digit of the event's microsecond tick per level. An
/// event is filed at the *highest* digit in which its tick differs from
/// the wheel's current tick `cur_`, so level 0 holds exactly one tick
/// per bucket (the current 256-tick span) and pops read bucket heads in
/// tick order. When the search for the next event crosses a digit
/// boundary, the bucket at the new digit *cascades*: its events re-file
/// one level down, in list order, which is schedule order — that, plus
/// the fact that a boundary always cascades before any new event can be
/// filed directly into the span it opens, is why FIFO ties survive the
/// wheel (DESIGN.md, "Hot path & memory layout"). Events beyond the
/// 2^32-µs (~71.6 min) wheel horizon wait in a small overflow min-heap
/// ordered by (timestamp, seq) and are pulled into the wheels one
/// 2^32-µs span at a time, in that order.
///
/// Callbacks live in a flat slot array (`slots_`), inline via
/// InlineCallback — never on the heap. A slot *is* its event: the bucket
/// lists are intrusive (prev/next indices stored in the slot), so
/// cancel() unlinks in O(1) without tombstones, and overflow entries
/// carry their heap position for O(log overflow) removal. Occupancy
/// bitmaps (256 bits per level) let the pop path jump straight to the
/// next occupied bucket instead of ticking through empty ones.
///
/// Generations wrap at 2^32, skipping generation 0 (reserved so a
/// recycled slot can never mint an id equal to the `kInvalidEventId`
/// sentinel); a stale handle could alias only after a single slot is
/// reused four billion times while the handle is held.
class EventQueue {
 public:
  using Callback = InlineCallback<kEventCallbackCapacity>;

  EventQueue();

  /// Schedule `fn` at absolute time `at`. Returns a handle for cancel().
  /// Scheduling before the latest popped timestamp (rejected upstream by
  /// `Simulator::schedule_at`) files the event at the wheel's current
  /// position: it pops as soon as possible, after pending events at the
  /// current tick, and still reports its requested timestamp.
  EventId schedule(TimePoint at, Callback fn);

  /// Cancel a pending event. Returns false if the event already ran,
  /// was already cancelled, or was never scheduled.
  bool cancel(EventId id);

  /// Timestamp of the earliest pending (non-cancelled) event.
  [[nodiscard]] std::optional<TimePoint> next_time() const;

  /// True when no live events remain.
  [[nodiscard]] bool empty() const { return live_ == 0; }
  /// Number of live (non-cancelled) events.
  [[nodiscard]] std::size_t size() const noexcept { return live_; }
  /// Entries held by the internal structures (wheel buckets + overflow
  /// heap). cancel() unlinks its entry eagerly — the wheel keeps no
  /// tombstones — so this always equals size(). Kept (and pinned by
  /// tests) as the no-leak guarantee the binary-heap predecessor
  /// documented: a cancel-heavy workload cannot grow storage unboundedly.
  [[nodiscard]] std::size_t heap_size() const noexcept { return live_; }

  /// Pop the earliest event and return it; nullopt when empty.
  struct Popped {
    TimePoint at;
    EventId id{kInvalidEventId};
    Callback fn;
  };
  [[nodiscard]] std::optional<Popped> pop();

  /// Pop the earliest event only if its timestamp is <= `limit`;
  /// nullopt when the queue is empty or the head lies beyond the limit
  /// (which stays pending). Fuses the next_time()+pop() pair the drain
  /// loop would otherwise issue into a single wheel advance.
  [[nodiscard]] std::optional<Popped> pop_due(TimePoint limit);

 private:
  friend struct EventQueueTestPeer;

  static constexpr unsigned kLevelBits = 8;
  static constexpr unsigned kLevels = 4;
  static constexpr std::uint32_t kBucketsPerLevel = 1u << kLevelBits;
  static constexpr std::uint32_t kBucketCount = kLevels * kBucketsPerLevel;
  static constexpr unsigned kWordsPerLevel = kBucketsPerLevel / 64;
  /// List terminator / "no position" marker for slot links.
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  /// `Slot::bucket` values outside [0, kBucketCount).
  static constexpr std::uint32_t kNoBucket = 0xFFFFFFFFu;
  static constexpr std::uint32_t kOverflowBucket = 0xFFFFFFFEu;

  /// Callback storage cell, reused across events via the free list; with
  /// the intrusive links below, the slot is also the queue entry. The
  /// generation counts retirements: an id minted against an older
  /// generation is stale.
  struct Slot {
    Callback fn;
    TimePoint at{};
    std::uint64_t seq{0};
    std::uint32_t generation{1};
    std::uint32_t prev{kNil};
    std::uint32_t next{kNil};
    std::uint32_t bucket{kNoBucket};
    /// Position in `overflow_` while bucket == kOverflowBucket.
    std::uint32_t heap_index{kNil};
  };

  [[nodiscard]] static EventId pack(std::uint32_t generation,
                                    std::uint32_t slot) noexcept {
    return (static_cast<EventId>(generation) << 32) | slot;
  }

  /// Order-preserving unsigned image of a timestamp (sign bit flipped),
  /// so wheel digits are plain radix digits even for negative times.
  [[nodiscard]] static std::uint64_t to_tick(TimePoint at) noexcept {
    return static_cast<std::uint64_t>(at.count()) ^
           (std::uint64_t{1} << 63);
  }

  /// File a live slot into the wheel level/bucket its tick selects
  /// relative to `cur_` (or the overflow heap beyond the horizon).
  void place(std::uint32_t slot, std::uint64_t tick);
  /// Append to a bucket's intrusive list (FIFO: pops read the head).
  void link(std::uint32_t bucket, std::uint32_t slot);
  /// Remove a slot from its bucket's list, clearing the occupancy bit
  /// when the bucket empties.
  void unlink(std::uint32_t slot);
  /// Remove a bucket's head slot (the pop path — no predecessor fixup).
  void unlink_head(std::uint32_t bucket);
  /// Release a slot's callback, bump its generation (skipping 0) and
  /// recycle it.
  void retire(std::uint32_t slot);

  /// Slot index of the earliest pending event (kNil when empty),
  /// without moving the wheel: cur_ must only advance when an event is
  /// actually consumed, otherwise a later schedule between the last pop
  /// and the pending head would be misfiled as "past". Scans at most one
  /// bucket list; the result is cached until a pop, a cancel of the head,
  /// or an earlier schedule invalidates it.
  [[nodiscard]] std::uint32_t peek_head() const;

  /// Re-file every event of a wheel bucket one level down (list order =
  /// schedule order, preserving FIFO ties).
  void cascade(std::uint32_t bucket);
  /// Set `cur_` to the overflow minimum's 2^32-µs span and move that
  /// whole span into the wheels in (timestamp, seq) order.
  void pull_overflow();

  /// First occupied bucket index >= `from` at `level`, or
  /// kBucketsPerLevel when none.
  [[nodiscard]] unsigned find_first_from(unsigned level,
                                         unsigned from) const noexcept;

  // Overflow min-heap of slot indices ordered by (at, seq); slots track
  // their heap position for O(log n) removal on cancel.
  [[nodiscard]] bool overflow_before(std::uint32_t a,
                                     std::uint32_t b) const noexcept;
  void overflow_push(std::uint32_t slot);
  void overflow_remove(std::size_t index);
  void overflow_sift_up(std::size_t index);
  void overflow_sift_down(std::size_t index);

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::vector<std::uint32_t> overflow_;
  /// Intrusive list head/tail per bucket, all levels flattened.
  std::array<std::uint32_t, kBucketCount> head_;
  std::array<std::uint32_t, kBucketCount> tail_;
  /// One occupancy bit per bucket (bits_[b >> 6] bit (b & 63)).
  std::array<std::uint64_t, kBucketCount / 64> bits_{};
  /// Current wheel tick (biased; starts at the minimum representable
  /// time, so nothing is "past" until pops advance it).
  std::uint64_t cur_{0};
  /// Cached peek_head() result; kNil when unknown. Mutable so the const
  /// observer next_time() can fill it.
  mutable std::uint32_t peek_{kNil};
  std::uint64_t next_seq_{1};
  std::size_t live_{0};
};

}  // namespace snipr::sim
