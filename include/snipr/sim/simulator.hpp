#pragma once

#include <cstdint>

#include "snipr/sim/event_queue.hpp"
#include "snipr/sim/rng.hpp"
#include "snipr/sim/time.hpp"

/// \file simulator.hpp
/// Discrete-event simulation kernel.
///
/// This is the substrate standing in for COOJA in the paper's evaluation:
/// a deterministic event loop over a microsecond-resolution virtual clock.
/// Components (radios, nodes, contact processes) schedule callbacks; the
/// kernel fires them in timestamp order.

namespace snipr::sim {

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  explicit Simulator(std::uint64_t seed = 1);

  /// Current virtual time.
  [[nodiscard]] TimePoint now() const noexcept { return now_; }

  /// Deterministic random source shared by the run.
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  /// Schedule at an absolute time (must not be before now()).
  EventId schedule_at(TimePoint at, Callback fn);
  /// Schedule after a non-negative delay from now().
  EventId schedule_after(Duration delay, Callback fn);
  /// Cancel a pending event; false if already fired/cancelled.
  bool cancel(EventId id);

  /// Run all events with timestamp <= until, then advance the clock to
  /// `until` even if idle. Returns the number of events executed.
  std::size_t run_until(TimePoint until);

  /// Run until the event queue drains. Returns events executed.
  std::size_t run();

  /// Execute at most `max_events` events. Returns events executed.
  std::size_t step(std::size_t max_events = 1);

  /// Live events still pending.
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  std::size_t drain(TimePoint limit, std::size_t max_events);

  EventQueue queue_;
  TimePoint now_{TimePoint::zero()};
  Rng rng_;
};

}  // namespace snipr::sim
