#pragma once

#include <cstdint>

/// \file rng.hpp
/// Deterministic pseudo-random source.
///
/// The engine is xoshiro256++ seeded via splitmix64. We implement the
/// engine and all distributions ourselves (see distributions.hpp) so that
/// simulation runs are bit-reproducible across standard libraries —
/// `std::normal_distribution` and friends are not portable.

namespace snipr::sim {

/// xoshiro256++ engine with splitmix64 seeding.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Next raw 64-bit value.
  [[nodiscard]] std::uint64_t next() noexcept;
  std::uint64_t operator()() noexcept { return next(); }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  [[nodiscard]] double uniform() noexcept;
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n). Requires n > 0. Uses rejection to avoid bias.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t n) noexcept;
  /// Bernoulli trial.
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Split off an independent stream (for per-node RNGs).
  [[nodiscard]] Rng fork() noexcept;

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

 private:
  std::uint64_t s_[4];
};

}  // namespace snipr::sim
