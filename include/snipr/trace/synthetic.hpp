#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "snipr/contact/contact.hpp"
#include "snipr/contact/process.hpp"
#include "snipr/contact/profile.hpp"

/// \file synthetic.hpp
/// Deterministic, seeded generation of contact traces (and ONE-format
/// connectivity reports) from any ArrivalProfile.
///
/// Real contact corpora are large and licensed; the generator gives us
/// unlimited trace corpora without shipping files: every
/// (profile, epochs, seed, drift) tuple is a reproducible "dataset" that
/// can be written as a ONE report, re-imported through the production
/// `read_one_connectivity` path, or replayed directly through
/// `contact::TraceReplayProcess`. Seasonal drift rotates the profile a
/// fixed number of slots per epoch, modelling the slowly shifting
/// mobility patterns the adaptive learner has to track.

namespace snipr::trace {

struct SyntheticTraceSpec {
  contact::ArrivalProfile profile{contact::ArrivalProfile::roadside()};
  /// Epochs (days) of trace to generate.
  std::size_t epochs{3};
  /// RNG seed: the whole trace is a pure function of this spec.
  std::uint64_t seed{1};
  /// Arrival-interval jitter (kNone = the deterministic analysis flow).
  contact::IntervalJitter jitter{contact::IntervalJitter::kNormalTenth};
  /// Contact length: Normal(mean, stddev) truncated positive, or exactly
  /// `mean` when stddev <= 0. Mean must be positive.
  double tcontact_mean_s{2.0};
  double tcontact_stddev_s{0.2};
  /// Seasonal drift: the profile is rotated by `drift_slots_per_epoch * e`
  /// slots in epoch e (+1 = every peak arrives one slot later each day).
  std::int64_t drift_slots_per_epoch{0};
};

class SyntheticTraceGenerator {
 public:
  /// Throws std::invalid_argument on a non-positive contact length mean
  /// or zero epochs.
  explicit SyntheticTraceGenerator(SyntheticTraceSpec spec);

  [[nodiscard]] const SyntheticTraceSpec& spec() const noexcept {
    return spec_;
  }

  /// Materialise the trace: sorted, non-overlapping contacts spanning
  /// `spec().epochs` epochs. Deterministic: same spec, same contacts.
  [[nodiscard]] std::vector<contact::Contact> generate() const;

  /// Write `generate()` as a ONE connectivity report for sensor `host`
  /// (peers cycle m0..m6). The report round-trips exactly through
  /// `read_one_connectivity(is, host)`.
  void write_one_report(std::ostream& os, const std::string& host) const;

  /// Write any contact list as a ONE report (the static core of the
  /// member above, usable for arbitrary traces).
  static void write_one_report(std::ostream& os, const std::string& host,
                               const std::vector<contact::Contact>& contacts);

 private:
  SyntheticTraceSpec spec_;
};

/// `profile` with every slot's mean interval moved `shift_slots` slots
/// later (negative = earlier); the epoch length is unchanged.
[[nodiscard]] contact::ArrivalProfile rotate_profile(
    const contact::ArrivalProfile& profile, std::int64_t shift_slots);

}  // namespace snipr::trace
