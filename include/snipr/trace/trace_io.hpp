#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "snipr/contact/contact.hpp"

/// \file trace_io.hpp
/// Contact-trace serialisation.
///
/// Traces are CSV files with the header `arrival_s,length_s`, one contact
/// per row, sorted by arrival. This is the interchange format between the
/// synthetic generators, real-world mobility datasets a user may import,
/// and the trace-driven contact process.

namespace snipr::trace {

/// Write `contacts` (sorted by arrival) as CSV to `os`.
void write_csv(std::ostream& os, const std::vector<contact::Contact>& contacts);

/// Write to a file; throws std::runtime_error when the file cannot be opened.
void write_csv_file(const std::string& path,
                    const std::vector<contact::Contact>& contacts);

/// Parse a CSV trace. Throws std::runtime_error with a line number on
/// malformed input (bad header, non-numeric fields, negative lengths,
/// unsorted arrivals).
[[nodiscard]] std::vector<contact::Contact> read_csv(std::istream& is);

/// Read from a file; throws std::runtime_error when the file cannot be opened.
[[nodiscard]] std::vector<contact::Contact> read_csv_file(
    const std::string& path);

}  // namespace snipr::trace
