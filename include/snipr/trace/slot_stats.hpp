#pragma once

#include <cstddef>
#include <vector>

#include "snipr/contact/contact.hpp"
#include "snipr/contact/profile.hpp"

/// \file slot_stats.hpp
/// Per-slot statistics of a contact trace, and trace -> profile estimation.
///
/// These are the offline counterparts of what a sensor node learns online:
/// given a recorded trace spanning one or more epochs, recover per-slot
/// arrival rates, contact capacity, and the rush-hour ordering.

namespace snipr::trace {

struct SlotSummary {
  std::size_t contact_count{0};
  sim::Duration capacity{};       ///< Σ Tcontact of contacts in the slot
  double mean_length_s{0.0};      ///< mean Tcontact (0 when empty)
  double contacts_per_epoch{0.0}; ///< count / epochs observed
  double est_mean_interval_s{0.0};///< slot_len / contacts_per_epoch (0 = dead)
};

class TraceSlotStats {
 public:
  /// Aggregate `contacts` into the slot grid of `layout`. The number of
  /// observed epochs is inferred from the last departure (at least 1).
  TraceSlotStats(const std::vector<contact::Contact>& contacts,
                 const contact::ArrivalProfile& layout);

  [[nodiscard]] std::size_t slot_count() const noexcept {
    return summaries_.size();
  }
  [[nodiscard]] const SlotSummary& slot(contact::SlotIndex s) const;
  [[nodiscard]] std::int64_t epochs_observed() const noexcept {
    return epochs_;
  }

  /// Slots ordered by decreasing observed contact count.
  [[nodiscard]] std::vector<contact::SlotIndex> slots_by_count() const;

  /// Estimated arrival profile (mean interval per slot) from the trace.
  [[nodiscard]] contact::ArrivalProfile estimate_profile() const;

 private:
  contact::ArrivalProfile layout_;
  std::vector<SlotSummary> summaries_;
  std::int64_t epochs_{1};
};

}  // namespace snipr::trace
