#pragma once

#include <vector>

#include "snipr/contact/profile.hpp"
#include "snipr/stats/histogram.hpp"

/// \file demand.hpp
/// Synthetic diurnal travel-demand profiles.
///
/// Fig. 3 of the paper motivates rush hours with the temporal distribution
/// of travel demand at the Midpoint Bridge (Florida): a double-humped
/// commuter curve with morning and evening peaks. That dataset is not
/// redistributable, so we synthesise profiles with the same shape and use
/// them to drive trace-based experiments. The substitution is documented in
/// DESIGN.md; only the *shape* (two pronounced peaks over a low base) is
/// load-bearing for the paper's argument.

namespace snipr::trace {

/// A relative demand weight per hour-of-day (24 entries, not normalised).
using HourlyWeights = std::vector<double>;

/// Double-peak commuter demand: base load overnight, shoulders through the
/// day, pronounced peaks at the given hours.
///
/// \param morning_peak_hour  hour [0,24) of the morning maximum.
/// \param evening_peak_hour  hour [0,24) of the evening maximum.
/// \param peak_to_base       ratio of peak demand to overnight base (> 1).
[[nodiscard]] HourlyWeights commuter_demand(std::size_t morning_peak_hour = 7,
                                            std::size_t evening_peak_hour = 17,
                                            double peak_to_base = 8.0);

/// Convert hourly demand weights into an ArrivalProfile: the expected
/// number of contacts per day is `contacts_per_day`, apportioned across
/// hours proportionally to weight. Hours with zero weight become dead slots.
[[nodiscard]] contact::ArrivalProfile demand_to_profile(
    const HourlyWeights& weights, double contacts_per_day);

/// Render demand weights as a 24-bin histogram (for Fig. 3-style output).
[[nodiscard]] stats::Histogram demand_histogram(const HourlyWeights& weights);

}  // namespace snipr::trace
