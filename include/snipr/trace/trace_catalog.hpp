#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "snipr/contact/contact.hpp"
#include "snipr/sim/time.hpp"
#include "snipr/trace/synthetic.hpp"

/// \file trace_catalog.hpp
/// The named trace-workload library.
///
/// The scenario catalog names *environments*; this catalog names
/// *traces*: concrete contact sequences a node or fleet can replay. Two
/// sources back the entries:
///
///  - **Checked-in corpora**: small ONE connectivity reports committed
///    under tests/data/one/, parsed with the production streaming
///    importer. The data directory resolves, in order, from an explicit
///    argument, the SNIPR_TRACE_DATA_DIR environment variable, and the
///    compiled-in source-tree default — so installed binaries can point
///    at their own corpus directory (this is also the hook for importing
///    a real CRAWDAD/ONE dataset; see DESIGN.md).
///  - **Generator-backed entries**: a `SyntheticTraceSpec` materialised
///    on demand. Unlimited trace corpora with zero bytes shipped; every
///    load reproduces the identical contacts.
///
/// Entries are resolvable from `snipr_cli --trace`, the scenario catalog
/// (trace-replay environments) and `deploy::FleetSpec::trace`
/// (heterogeneous fleets where each node replays its own slice).

namespace snipr::trace {

enum class TraceSource {
  kFile,       ///< ONE report under the catalog data directory
  kGenerator,  ///< materialised from a SyntheticTraceSpec
};

struct TraceEntry {
  std::string name;         ///< stable CLI / catalog identifier
  std::string description;  ///< one line, shown by --list-traces
  TraceSource source{TraceSource::kGenerator};
  /// kFile: report file name (relative to the data dir) and the sensor
  /// host whose contacts are extracted.
  std::string file;
  std::string host;
  /// kGenerator: the full recipe.
  SyntheticTraceSpec spec{};
  /// Slot layout the trace was recorded against: the epoch is the natural
  /// replay tiling period, `slots` the grid for profile estimation.
  sim::Duration epoch{sim::Duration::hours(24)};
  std::size_t slots{24};
};

/// Immutable registry of every named trace, built once per process.
class TraceCatalog {
 public:
  [[nodiscard]] static const TraceCatalog& instance();

  [[nodiscard]] const std::vector<TraceEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Entry by name; nullptr when unknown.
  [[nodiscard]] const TraceEntry* find(std::string_view name) const;
  /// Entry by name; throws std::out_of_range listing every valid name.
  [[nodiscard]] const TraceEntry& at(std::string_view name) const;
  /// All names, in registry order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Materialise an entry's contacts (sorted, non-overlapping).
  /// Deterministic: same entry (and for file entries, same file bytes),
  /// same contacts. File entries resolve against `data_dir`, falling back
  /// to $SNIPR_TRACE_DATA_DIR and then the compiled-in default; throws
  /// std::runtime_error when the file cannot be read or parsed.
  [[nodiscard]] static std::vector<contact::Contact> load(
      const TraceEntry& entry, const std::string& data_dir = {});

  /// Convenience: `load(at(name), data_dir)`.
  [[nodiscard]] std::vector<contact::Contact> load_by_name(
      std::string_view name, const std::string& data_dir = {}) const;

  /// The directory file-backed entries resolve against when no override
  /// is given: $SNIPR_TRACE_DATA_DIR or the compiled-in default.
  [[nodiscard]] static std::string default_data_dir();

  /// The compiled-in corpus directory alone, ignoring the environment.
  /// Pinned environments (scenario-catalog replay entries) resolve here
  /// so an ad-hoc $SNIPR_TRACE_DATA_DIR override cannot silently swap
  /// the corpus behind a named, golden-pinned scenario.
  [[nodiscard]] static std::string compiled_data_dir();

 private:
  TraceCatalog();
  std::vector<TraceEntry> entries_;
};

/// The 48-slot multi-peak urban arterial flow: ten half-hour peak slots
/// (Tinterval 360 s) over a 1500 s base. Single-sourced here because the
/// `synthetic-metro-drift` trace entry and the scenario catalog's
/// multi-peak-urban / fleet environments must stay the same flow — a
/// drift between the planners' grid and the replayed workload would only
/// surface as an opaque golden diff.
[[nodiscard]] contact::ArrivalProfile metro_profile();

}  // namespace snipr::trace
