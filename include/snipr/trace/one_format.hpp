#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "snipr/contact/contact.hpp"

/// \file one_format.hpp
/// Importer for ONE-simulator connectivity reports.
///
/// The ONE DTN simulator's ConnectivityONEReport writes one event per
/// line:
///
///     <time_s> CONN <host1> <host2> up|down
///
/// which is the de-facto interchange format for DTN contact traces.
/// This importer extracts, for a chosen host (the sensor node), the
/// contact intervals with every peer — giving real-world mobility
/// datasets a direct path into the snipr pipeline (trace -> slot stats ->
/// rush-hour mask -> SNIP-RH, or trace -> TraceReplayProcess ->
/// Simulator).
///
/// The core is streaming: events are parsed line by line and merged
/// contacts are emitted through a callback as soon as no later event can
/// still overlap them, holding only the window of open and pending
/// contacts (bounded by the number of concurrently-in-range peers), not
/// the whole event list. Multi-megabyte traces therefore parse in O(1)
/// memory; `read_one_connectivity` is a thin collector on top.

namespace snipr::trace {

/// Counters from one streaming parse.
struct OneStreamStats {
  std::size_t lines{0};        ///< lines read, including skipped ones
  std::size_t conn_events{0};  ///< CONN events involving the host
  std::size_t contacts{0};     ///< merged contacts emitted
  /// Peak open + pending-merge contacts held at once — the importer's
  /// actual memory high-water mark, O(concurrent peers), not O(events).
  std::size_t peak_window{0};
};

/// Streaming core: parse a ONE connectivity report and emit the merged
/// contacts of `host` (intervals between an `up` and the matching `down`
/// involving it) through `sink`, in arrival order. Overlapping contacts
/// with different peers are merged, matching the reference model's
/// one-mobile-at-a-time channel; an `up` without a `down` is closed at
/// the last event time.
///
/// Throws std::runtime_error (with a line number) on malformed input:
/// non-numeric time, unknown direction, down-without-up, non-monotonic
/// timestamps. Contacts already emitted before the bad line stand.
OneStreamStats stream_one_connectivity(
    std::istream& is, const std::string& host,
    const std::function<void(const contact::Contact&)>& sink);

/// File variant; throws std::runtime_error when the file cannot be opened.
OneStreamStats stream_one_connectivity_file(
    const std::string& path, const std::string& host,
    const std::function<void(const contact::Contact&)>& sink);

/// Collect the streaming core's output into a vector, sorted by arrival.
[[nodiscard]] std::vector<contact::Contact> read_one_connectivity(
    std::istream& is, const std::string& host);

/// File variant; throws std::runtime_error when the file cannot be opened.
[[nodiscard]] std::vector<contact::Contact> read_one_connectivity_file(
    const std::string& path, const std::string& host);

}  // namespace snipr::trace
