#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "snipr/contact/contact.hpp"

/// \file one_format.hpp
/// Importer for ONE-simulator connectivity reports.
///
/// The ONE DTN simulator's ConnectivityONEReport writes one event per
/// line:
///
///     <time_s> CONN <host1> <host2> up|down
///
/// which is the de-facto interchange format for DTN contact traces.
/// This importer extracts, for a chosen host (the sensor node), the
/// contact intervals with every peer — giving real-world mobility
/// datasets a direct path into the snipr pipeline (trace -> slot stats ->
/// rush-hour mask -> SNIP-RH).

namespace snipr::trace {

/// Parse a ONE connectivity report and return the contacts of `host`
/// (intervals between an `up` and the matching `down` involving it),
/// sorted by arrival. Overlapping contacts with different peers are
/// merged, matching the reference model's one-mobile-at-a-time channel.
///
/// Throws std::runtime_error (with a line number) on malformed input:
/// non-numeric time, unknown direction, down-without-up, non-monotonic
/// timestamps. An `up` without a `down` is closed at the last event time.
[[nodiscard]] std::vector<contact::Contact> read_one_connectivity(
    std::istream& is, const std::string& host);

/// File variant; throws std::runtime_error when the file cannot be opened.
[[nodiscard]] std::vector<contact::Contact> read_one_connectivity_file(
    const std::string& path, const std::string& host);

}  // namespace snipr::trace
