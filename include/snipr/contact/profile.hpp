#pragma once

#include <cstddef>
#include <vector>

#include "snipr/sim/time.hpp"

/// \file profile.hpp
/// Per-time-slot contact arrival profile.
///
/// The paper divides an epoch (e.g. 24 h of diurnal human mobility) into N
/// equal time-slots (Sec. VI-A) and characterises each slot by how often
/// contacts arrive in it. This type is the shared environment description
/// used by generators (to synthesise contact processes), by the analytical
/// model (to compute per-slot capacity), and by planners (SNIP-OPT's
/// per-slot duty-cycles, SNIP-RH's rush-hour mask).

namespace snipr::contact {

/// Index of a slot within an epoch, in [0, slot_count).
using SlotIndex = std::size_t;

class ArrivalProfile {
 public:
  /// \param epoch          epoch length Tepoch (> 0).
  /// \param mean_intervals per-slot mean inter-arrival time Tinterval in
  ///                       seconds; one entry per slot, all > 0. Use
  ///                       `kNoContacts` for a dead slot.
  ArrivalProfile(sim::Duration epoch, std::vector<double> mean_intervals);

  /// Sentinel mean interval for slots with no contacts at all.
  static constexpr double kNoContacts = 0.0;

  [[nodiscard]] sim::Duration epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::size_t slot_count() const noexcept {
    return mean_intervals_.size();
  }
  [[nodiscard]] sim::Duration slot_length() const noexcept {
    return epoch_ / static_cast<std::int64_t>(slot_count());
  }

  /// Slot containing absolute time `t` (epoch wraps).
  [[nodiscard]] SlotIndex slot_of(sim::TimePoint t) const noexcept;
  /// Start of slot `s` within the epoch containing `t`.
  [[nodiscard]] sim::TimePoint slot_start(sim::TimePoint t) const noexcept;
  /// Epoch index containing `t` (0-based day number for a 24 h epoch).
  [[nodiscard]] std::int64_t epoch_of(sim::TimePoint t) const noexcept;

  /// Mean inter-arrival seconds for slot `s`; kNoContacts when dead.
  [[nodiscard]] double mean_interval_s(SlotIndex s) const;
  /// Arrival rate (contacts/second) for slot `s`; 0 when dead.
  [[nodiscard]] double arrival_rate(SlotIndex s) const;
  /// Expected number of contacts arriving during one occurrence of slot `s`.
  [[nodiscard]] double expected_contacts(SlotIndex s) const;
  /// Expected contacts over a whole epoch.
  [[nodiscard]] double expected_contacts_per_epoch() const;

  /// Slots ordered by decreasing arrival rate (ties by index); the ground
  /// truth a rush-hour learner tries to recover.
  [[nodiscard]] std::vector<SlotIndex> slots_by_rate() const;

  /// The paper's simplified road-side scenario (Sec. VII-A): Tepoch = 24 h,
  /// N = 24, rush hours 7:00-9:00 and 17:00-19:00 with Tinterval = 300 s,
  /// Tinterval = 1800 s elsewhere.
  [[nodiscard]] static ArrivalProfile roadside();

  /// Flat profile: every slot has the same mean interval.
  [[nodiscard]] static ArrivalProfile uniform(sim::Duration epoch,
                                              std::size_t slots,
                                              double mean_interval_s);

 private:
  sim::Duration epoch_;
  std::vector<double> mean_intervals_;
};

}  // namespace snipr::contact
