#pragma once

#include <optional>
#include <vector>

#include "snipr/contact/contact.hpp"
#include "snipr/contact/profile.hpp"

/// \file schedule.hpp
/// Immutable, queryable view over a materialised contact list.
///
/// The simulated channel asks "is a mobile node in range at time t?" and
/// "when does the current contact end?"; per-slot capacity queries feed
/// learning and reporting.

namespace snipr::contact {

class ContactSchedule {
 public:
  /// Takes a list sorted by arrival (materialize() output qualifies);
  /// throws if unsorted or if contacts overlap.
  explicit ContactSchedule(std::vector<Contact> contacts);

  [[nodiscard]] const std::vector<Contact>& contacts() const noexcept {
    return contacts_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return contacts_.size(); }
  [[nodiscard]] bool empty() const noexcept { return contacts_.empty(); }

  /// Contact covering `t`, if any.
  [[nodiscard]] std::optional<Contact> active_at(sim::TimePoint t) const;
  /// First contact with arrival >= t.
  [[nodiscard]] std::optional<Contact> next_arrival_at_or_after(
      sim::TimePoint t) const;
  /// Index of the first contact with departure() > t; size() when every
  /// contact has departed. Departures are non-decreasing (the list is
  /// sorted and non-overlapping), so this is the resume point for any
  /// forward-in-time scan — radio::Channel seeds its monotone query
  /// cursor here on backward jumps.
  [[nodiscard]] std::size_t first_undeparted_index(sim::TimePoint t) const;

  /// Total capacity (Σ Tcontact) of contacts arriving in [from, to).
  [[nodiscard]] sim::Duration capacity_in(sim::TimePoint from,
                                          sim::TimePoint to) const;
  /// Number of contacts arriving in [from, to).
  [[nodiscard]] std::size_t count_in(sim::TimePoint from,
                                     sim::TimePoint to) const;

  /// Per-slot capacity accumulated across all epochs covered by the
  /// schedule, indexed by slot. Slot membership is by arrival time.
  [[nodiscard]] std::vector<sim::Duration> capacity_by_slot(
      const ArrivalProfile& profile) const;
  /// Per-slot contact counts across all epochs, indexed by slot.
  [[nodiscard]] std::vector<std::size_t> count_by_slot(
      const ArrivalProfile& profile) const;

 private:
  std::vector<Contact> contacts_;
};

}  // namespace snipr::contact
