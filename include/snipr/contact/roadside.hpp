#pragma once

#include <memory>

#include "snipr/sim/distributions.hpp"

/// \file roadside.hpp
/// Geometric road-side contact-length model.
///
/// The paper's scenario abstracts a sensor node deployed beside a road;
/// mobile nodes (vehicles, pedestrians with phones) pass by at roughly
/// constant speed. A pass at perpendicular offset `y` from a node with
/// communication range `R` traverses a chord of length 2*sqrt(R^2 - y^2),
/// so the contact length is chord / speed. This model turns physical
/// parameters into the contact-length distribution the rest of the library
/// consumes — e.g. R = 10 m and v = 10 m/s (urban traffic) yields the
/// paper's Tcontact = 2 s for a straight-through pass.

namespace snipr::contact {

class RoadsideGeometry {
 public:
  /// \param range_m        communication range R in metres (> 0).
  /// \param speed_mps      speed distribution in m/s (samples must be > 0).
  /// \param max_offset_m   mobiles pass at a perpendicular offset drawn
  ///                       uniformly from [0, max_offset_m]; must be < R.
  ///                       0 means every pass goes through the centre.
  RoadsideGeometry(double range_m, std::unique_ptr<sim::Distribution> speed_mps,
                   double max_offset_m = 0.0);

  /// Draw one contact length in seconds.
  [[nodiscard]] double sample_contact_length_s(sim::Rng& rng) const;

  /// Expected contact length (numeric, by averaging the chord over the
  /// offset distribution and using E[1/v] ~ 1/E[v] for low-variance speeds).
  [[nodiscard]] double mean_contact_length_s() const;

  [[nodiscard]] double range_m() const noexcept { return range_m_; }

  /// Adapter: expose the geometry as a Distribution over contact lengths
  /// so it can plug into any ContactProcess.
  [[nodiscard]] std::unique_ptr<sim::Distribution> as_length_distribution()
      const;

 private:
  double range_m_;
  std::unique_ptr<sim::Distribution> speed_mps_;
  double max_offset_m_;
};

}  // namespace snipr::contact
