#pragma once

#include <cstddef>
#include <vector>

#include "snipr/contact/contact.hpp"
#include "snipr/contact/process.hpp"
#include "snipr/sim/rng.hpp"
#include "snipr/sim/time.hpp"

/// \file trace_replay.hpp
/// Trace replay as a first-class ContactProcess.
///
/// `TraceContactProcess` plays a recorded contact list back exactly once,
/// which is enough for offline slot statistics but a dead end for the
/// simulator: a three-day CRAWDAD/ONE trace cannot drive a two-week
/// experiment, every node of a fleet would see the identical stream, and
/// day-to-day variation is lost. `TraceReplayProcess` closes that gap:
///
///  - **Epoch tiling**: with `period > 0` the trace loops forever. The
///    tiling span is `period` rounded up to cover the whole trace, so a
///    3-day trace tiled with a 24 h period repeats every 3 days and every
///    repetition keeps its slot phase (rush hours stay at rush hour).
///  - **Phase rotation**: `offset` rotates the replay within the span
///    (modulo the span when tiling), so fleet node i can replay "the same
///    day, seen i x stagger later" — a different slice of one trace per
///    node instead of one shared flow.
///  - **Per-contact jitter**: `jitter_stddev_s > 0` perturbs every
///    arrival with a normal draw from the caller's Rng, modelling
///    day-to-day variation across repetitions. Draws are consumed in
///    emission order, so a fixed Rng stream reproduces the stream bit
///    for bit.
///
/// Emitted contacts are always sorted by arrival and never overlap (a
/// jittered arrival is pushed to the previous departure, matching the
/// one-mobile-at-a-time channel model every other process honours), so a
/// replayed trace runs through ContactSchedule, the Simulator and every
/// scheduler unchanged.

namespace snipr::contact {

struct TraceReplayConfig {
  /// Tiling period. Zero replays the trace once; positive tiles forever
  /// with a span of ceil(trace_end / period) * period.
  sim::Duration period{};
  /// Phase shift applied to every arrival: a plain delay when not tiling,
  /// a rotation modulo the span when tiling (contacts wrapping past the
  /// span end are clipped to it).
  sim::Duration offset{};
  /// Stddev (seconds) of the per-contact normal arrival jitter; 0 = exact
  /// replay, no Rng draws at all.
  double jitter_stddev_s{0.0};
};

/// Replays a recorded contact sequence with optional epoch tiling, phase
/// rotation and per-contact jitter.
class TraceReplayProcess final : public ContactProcess {
 public:
  /// \param base contacts sorted by arrival with positive lengths (what
  ///        trace IO, the ONE importer and the generators all produce);
  ///        throws std::invalid_argument otherwise.
  explicit TraceReplayProcess(std::vector<Contact> base,
                              TraceReplayConfig config = {});

  [[nodiscard]] std::optional<Contact> next(sim::Rng& rng) override;
  void reset() override;

  /// Number of contacts in one pass of the (rotated) base trace.
  [[nodiscard]] std::size_t size() const noexcept { return base_.size(); }
  /// Tiling span actually in use (zero when not tiling).
  [[nodiscard]] sim::Duration span() const noexcept { return span_; }

 private:
  std::vector<Contact> base_;
  sim::Duration span_{};  // zero = one-shot
  double jitter_stddev_s_;
  std::size_t cursor_{0};
  std::int64_t repetition_{0};
  sim::TimePoint last_departure_{sim::TimePoint::zero()};
};

}  // namespace snipr::contact
