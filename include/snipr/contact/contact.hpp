#pragma once

#include <cstdint>
#include <vector>

#include "snipr/sim/time.hpp"

/// \file contact.hpp
/// The contact abstraction: an interval during which one mobile node is
/// inside the sensor node's communication range (Fig. 2 of the paper).

namespace snipr::contact {

struct Contact {
  sim::TimePoint arrival;  ///< mobile node enters range
  sim::Duration length;    ///< Tcontact: time spent in range

  [[nodiscard]] sim::TimePoint departure() const noexcept {
    return arrival + length;
  }
  /// True when `t` falls inside [arrival, departure).
  [[nodiscard]] bool covers(sim::TimePoint t) const noexcept {
    return t >= arrival && t < departure();
  }

  friend bool operator==(const Contact&, const Contact&) = default;
};

/// Total contact capacity (Σ Tcontact) of a set of contacts.
[[nodiscard]] sim::Duration total_capacity(
    const std::vector<Contact>& contacts);

}  // namespace snipr::contact
