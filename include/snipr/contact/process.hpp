#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "snipr/contact/contact.hpp"
#include "snipr/contact/profile.hpp"
#include "snipr/sim/distributions.hpp"
#include "snipr/sim/rng.hpp"

/// \file process.hpp
/// Contact arrival processes.
///
/// A ContactProcess turns the environment description (ArrivalProfile +
/// contact-length distribution) into a concrete stream of contacts. Three
/// generative families cover the paper plus extensions:
///  - IntervalContactProcess: next arrival = previous arrival + Tinterval,
///    with Tinterval drawn per slot. With FixedDistribution jitter this is
///    the paper's analysis environment; with TruncatedNormal (sigma = mean/10)
///    it is the paper's COOJA simulation environment (Sec. VII-A.2).
///  - PoissonContactProcess: non-homogeneous Poisson arrivals matching the
///    per-slot rates (thinning), a common DTN workload extension.
///  - TraceContactProcess: replays a recorded/synthetic trace.

namespace snipr::contact {

/// Jitter applied to a slot's mean inter-arrival interval.
enum class IntervalJitter {
  kNone,          ///< deterministic: interval == slot mean
  kNormalTenth,   ///< Normal(mean, mean/10), truncated positive (the paper)
};

/// Pull-based stream of contacts, ordered by arrival time.
class ContactProcess {
 public:
  virtual ~ContactProcess() = default;
  ContactProcess() = default;
  ContactProcess(const ContactProcess&) = delete;
  ContactProcess& operator=(const ContactProcess&) = delete;
  ContactProcess(ContactProcess&&) = delete;
  ContactProcess& operator=(ContactProcess&&) = delete;

  /// Next contact, or nullopt when the stream is exhausted (trace end).
  [[nodiscard]] virtual std::optional<Contact> next(sim::Rng& rng) = 0;

  /// Restart the stream from the origin.
  virtual void reset() = 0;
};

/// Sequential interval-based generator (the paper's environment).
///
/// Within one occurrence of a slot, arrivals form a renewal process with
/// gaps drawn from that slot's Tinterval; a gap that crosses the slot
/// boundary restarts the renewal in the next slot (an arrival exactly on
/// the boundary belongs to the next slot).
///
/// - kNone: gaps equal the slot mean. This reproduces the paper's
///   deterministic counts exactly — the road-side profile yields
///   3600/300 = 12 contacts per rush-hour slot and 3600/1800 = 2 elsewhere
///   (day one has one fewer: nothing precedes t = 0). Requires
///   Tinterval <= slot length to generate the nominal rate.
/// - kNormalTenth (the paper's simulation): gaps are Normal(m, m/10), and
///   the first gap of each slot occurrence is an equilibrium residual
///   drawn uniformly from [0, m], which keeps the per-slot rate at 1/m
///   (a fresh renewal would under-count by half a gap per slot) and
///   handles sparse profiles where Tinterval exceeds the slot length.
///
/// If a draw would overlap the previous contact, the arrival is pushed to
/// the previous departure: the reference model assumes at most one mobile
/// node in range at a time (Sec. II), so contacts never overlap. Dead
/// slots are skipped.
class IntervalContactProcess final : public ContactProcess {
 public:
  IntervalContactProcess(ArrivalProfile profile,
                         std::unique_ptr<sim::Distribution> contact_length,
                         IntervalJitter jitter = IntervalJitter::kNone);

  /// Per-slot contact-length distributions (Sec. V's full environment:
  /// each slot has its own length distribution). One non-null entry per
  /// slot; a contact draws from the distribution of its arrival slot.
  IntervalContactProcess(
      ArrivalProfile profile,
      std::vector<std::unique_ptr<sim::Distribution>> lengths_per_slot,
      IntervalJitter jitter = IntervalJitter::kNone);

  [[nodiscard]] std::optional<Contact> next(sim::Rng& rng) override;
  void reset() override;

  [[nodiscard]] const ArrivalProfile& profile() const noexcept {
    return profile_;
  }

 private:
  [[nodiscard]] double draw_interval_s(SlotIndex slot, bool fresh_slot,
                                       sim::Rng& rng) const;

  ArrivalProfile profile_;
  std::vector<std::unique_ptr<sim::Distribution>> lengths_per_slot_;
  IntervalJitter jitter_;
  bool has_live_slots_;
  bool fresh_slot_{true};
  sim::TimePoint cursor_{sim::TimePoint::zero()};
  std::optional<Contact> previous_{};
};

/// Non-homogeneous Poisson arrivals via thinning against the profile's
/// maximum rate. Contact lengths are iid from the supplied distribution.
class PoissonContactProcess final : public ContactProcess {
 public:
  PoissonContactProcess(ArrivalProfile profile,
                        std::unique_ptr<sim::Distribution> contact_length);

  [[nodiscard]] std::optional<Contact> next(sim::Rng& rng) override;
  void reset() override;

 private:
  ArrivalProfile profile_;
  std::unique_ptr<sim::Distribution> contact_length_;
  double max_rate_;
  sim::TimePoint cursor_{sim::TimePoint::zero()};
  sim::TimePoint last_departure_{sim::TimePoint::zero()};
};

/// Replays a fixed, sorted contact list (from trace IO or a generator).
class TraceContactProcess final : public ContactProcess {
 public:
  explicit TraceContactProcess(std::vector<Contact> contacts);

  [[nodiscard]] std::optional<Contact> next(sim::Rng& rng) override;
  void reset() override;

  [[nodiscard]] std::size_t size() const noexcept { return contacts_.size(); }

 private:
  std::vector<Contact> contacts_;
  std::size_t cursor_{0};
};

/// Materialise a process over [0, horizon). Contacts whose arrival falls
/// before the horizon are included even if they end after it.
[[nodiscard]] std::vector<Contact> materialize(ContactProcess& process,
                                               sim::Duration horizon,
                                               sim::Rng& rng);

}  // namespace snipr::contact
