#pragma once

#include <cstddef>

/// \file online_stats.hpp
/// Numerically stable single-pass mean/variance (Welford's algorithm).

namespace snipr::stats {

class OnlineStats {
 public:
  /// Serialisable internal state (checkpoint/restore of streaming runs).
  /// Restoring a snapshot and continuing is bit-identical to never
  /// having stopped.
  struct Snapshot {
    std::size_t n{0};
    double mean{0.0};
    double m2{0.0};
    double min{0.0};
    double max{0.0};
  };

  void add(double sample) noexcept;
  /// Merge another accumulator (parallel reduction of per-epoch stats).
  /// Merging an empty accumulator (either side) is the identity: min/max
  /// never absorb the empty side's meaningless zeros.
  void merge(const OnlineStats& other) noexcept;

  [[nodiscard]] Snapshot snapshot() const noexcept {
    return {n_, mean_, m2_, min_, max_};
  }
  void restore(const Snapshot& s) noexcept {
    n_ = s.n;
    mean_ = s.mean;
    m2_ = s.m2;
    min_ = s.min;
    max_ = s.max;
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance; 0 with fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  /// Unbiased sample variance; 0 with fewer than two samples.
  [[nodiscard]] double sample_variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept;

  void reset() noexcept { *this = OnlineStats{}; }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

}  // namespace snipr::stats
