#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file quantile_sketch.hpp
/// Mergeable fixed-relative-error quantile sketch (DDSketch-style).
///
/// Values are filed into geometrically spaced buckets: bucket i covers
/// (γ^(i−1), γ^i] with γ = (1+ε)/(1−ε), so any reported quantile is
/// within relative error ε of a true sample. Non-positive values (ζ can
/// legitimately be exactly zero for a starved node) collapse into a
/// dedicated zero bucket reported as 0.0.
///
/// The state is nothing but integer counts, so merging sketches is exact
/// (count addition), commutative and associative — per-shard sketches
/// merged in any order give byte-identical quantiles, which is what the
/// streaming fleet aggregation needs. Memory is O(log(max/min)/ε):
/// ~2.3k buckets cover 12 decades at ε = 1%, independent of how many
/// samples stream through.
namespace snipr::stats {

class QuantileSketch {
 public:
  /// Serialisable state (checkpoint/restore of a streaming run).
  struct Snapshot {
    double relative_error{0.0};
    std::int32_t base{0};  ///< bucket index of counts[0]
    std::uint64_t zero_count{0};
    std::vector<std::uint64_t> counts;
  };

  explicit QuantileSketch(double relative_error = 0.01);
  explicit QuantileSketch(const Snapshot& snapshot);

  void add(double value);
  /// Exact merge: bucket-wise count addition. Both sketches must share
  /// the same relative error (throws std::invalid_argument otherwise).
  void merge(const QuantileSketch& other);

  /// Value at quantile `q` in [0, 1] (0 = min bucket, 1 = max bucket),
  /// within the configured relative error. Returns 0.0 on an empty
  /// sketch.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] double relative_error() const noexcept {
    return relative_error_;
  }

  [[nodiscard]] Snapshot snapshot() const;

 private:
  [[nodiscard]] std::int32_t bucket_index(double value) const;
  /// Representative value of a bucket (midpoint in relative terms).
  [[nodiscard]] double bucket_value(std::int32_t index) const;

  double relative_error_;
  double gamma_;
  double inv_log_gamma_;
  std::uint64_t zero_count_{0};
  std::uint64_t total_{0};
  /// counts_[i] is the population of bucket (base_ + i); the window
  /// grows (amortised, re-based) as values outside it arrive.
  std::int32_t base_{0};
  std::vector<std::uint64_t> counts_;
};

}  // namespace snipr::stats
