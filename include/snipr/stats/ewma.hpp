#pragma once

#include <stdexcept>

/// \file ewma.hpp
/// Exponentially weighted moving average.
///
/// SNIP-RH (Sec. VI-B/C of the paper) smooths two noisy online signals with
/// an EWMA that assigns "a small weight to the new sample": the mean contact
/// length T̄contact (which sets the duty-cycle) and the mean amount of data
/// uploaded per probed contact (which gates probing on buffer occupancy).

namespace snipr::stats {

class Ewma {
 public:
  /// \param weight  weight of the new sample, in (0, 1]. The paper uses a
  ///                small weight; our default follows that guidance.
  /// \param initial optional prior estimate seeded before any samples.
  explicit Ewma(double weight = 0.1);
  Ewma(double weight, double initial);

  /// Fold in one observation. The first observation initialises the mean
  /// unless a prior was supplied.
  void add(double sample) noexcept;

  /// Current estimate. Requires has_value().
  [[nodiscard]] double value() const;
  /// Estimate, or `fallback` before any data.
  [[nodiscard]] double value_or(double fallback) const noexcept;

  [[nodiscard]] bool has_value() const noexcept { return initialised_; }
  [[nodiscard]] double weight() const noexcept { return weight_; }
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  /// Forget everything (including a seeded prior).
  void reset() noexcept;

  /// Raw mean regardless of initialisation (0.0 before any data) — the
  /// checkpoint-side counterpart of restore().
  [[nodiscard]] double mean_raw() const noexcept { return mean_; }
  /// Bit-exact restore of state captured via mean_raw() / has_value() /
  /// count() (the crash-recovery checkpoint path).
  void restore(double mean, bool initialised, std::size_t count) noexcept {
    mean_ = mean;
    initialised_ = initialised;
    count_ = count;
  }

 private:
  double weight_;
  double mean_{0.0};
  bool initialised_{false};
  std::size_t count_{0};
};

}  // namespace snipr::stats
