#pragma once

#include <cstddef>
#include <string>
#include <vector>

/// \file histogram.hpp
/// Fixed-width binned histogram, used for per-slot contact statistics and
/// for rendering demand profiles (Fig. 3-style plots) as text.

namespace snipr::stats {

class Histogram {
 public:
  /// Bins of equal width spanning [lo, hi); samples outside are counted in
  /// underflow/overflow. Requires hi > lo and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  /// Count `sample` with `weight`. The range is half-open at every level:
  /// `lo` is inclusive, `hi` is overflow (add(hi) increments overflow(),
  /// add(nextafter(hi, lo)) lands in the last bin), and each bin covers
  /// [bin_lo, bin_hi). Samples a rounding error below hi can make
  /// `(sample - lo) / bin_width` quotient to the bin count; the index is
  /// clamped to the last bin so the [lo, hi) promise survives floating
  /// point.
  void add(double sample, double weight = 1.0);

  [[nodiscard]] std::size_t bin_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;
  [[nodiscard]] double count(std::size_t bin) const;
  [[nodiscard]] double underflow() const noexcept { return underflow_; }
  [[nodiscard]] double overflow() const noexcept { return overflow_; }
  [[nodiscard]] double total() const noexcept { return total_; }
  /// Fraction of in-range mass in `bin` (0 when empty).
  [[nodiscard]] double fraction(std::size_t bin) const;

  /// Index of the fullest bin (ties -> lowest index). Requires total() > 0.
  [[nodiscard]] std::size_t mode_bin() const;

  /// Simple fixed-width ASCII rendering, one row per bin.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

  void reset() noexcept;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<double> counts_;
  double underflow_{0.0};
  double overflow_{0.0};
  double total_{0.0};
};

}  // namespace snipr::stats
