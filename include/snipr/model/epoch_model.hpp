#pragma once

#include <optional>
#include <vector>

#include "snipr/contact/profile.hpp"
#include "snipr/model/snip_model.hpp"

/// \file epoch_model.hpp
/// Fluid (closed-form) epoch analysis of SNIP scheduling mechanisms.
///
/// This module produces the paper's "numerical results" (Figs. 5 and 6):
/// given the per-slot arrival profile, the contact length, and Ton, it
/// evaluates any per-slot duty plan and computes the outcome of the three
/// scheduling mechanisms — SNIP-AT, SNIP-OPT and SNIP-RH — without running
/// the discrete-event simulator. The simulator (snipr::node + snipr::core)
/// validates these predictions (Figs. 7 and 8).

namespace snipr::model {

/// ζ/Φ/ρ of an executed epoch plan.
struct PlanMetrics {
  double zeta_s{0.0};  ///< probed contact capacity per epoch (s)
  double phi_s{0.0};   ///< probing overhead per epoch (radio-on s)
  /// ρ = Φ/ζ; +inf when nothing is probed but energy was spent, 0 when idle.
  [[nodiscard]] double rho() const noexcept;
};

/// Outcome of one scheduling mechanism for one (ζtarget, Φmax) point.
struct ScheduleOutcome {
  std::vector<double> duties;  ///< nominal per-slot duty-cycles
  PlanMetrics metrics;         ///< achieved ζ, Φ
  bool met_target{false};      ///< ζ >= ζtarget (within fluid model)
};

class EpochModel {
 public:
  /// \param profile        per-slot arrival profile (the environment).
  /// \param tcontact_s     (mean) contact length, identical in every slot;
  ///                       the fluid analysis treats lengths as fixed,
  ///                       matching Sec. VII-A.
  /// \param params         SNIP radio parameters (Ton).
  EpochModel(contact::ArrivalProfile profile, double tcontact_s,
             SnipParams params = {});

  /// Per-slot contact lengths: Sec. V's full environment description
  /// ("both contact arrival frequency and contact length distribution"
  /// per time-slot). One mean length per slot, all > 0.
  EpochModel(contact::ArrivalProfile profile,
             std::vector<double> tcontact_per_slot_s, SnipParams params = {});

  [[nodiscard]] const contact::ArrivalProfile& profile() const noexcept {
    return profile_;
  }
  /// Capacity-weighted mean contact length across the epoch — what a
  /// node's global EWMA of probed lengths converges toward.
  [[nodiscard]] double tcontact_s() const noexcept { return tcontact_mean_s_; }
  /// Mean contact length in slot `s`.
  [[nodiscard]] double slot_tcontact_s(contact::SlotIndex s) const;
  [[nodiscard]] double ton_s() const noexcept { return params_.ton_s; }
  [[nodiscard]] std::size_t slot_count() const noexcept {
    return profile_.slot_count();
  }

  /// Total contact capacity arriving during slot `s` (t_i·f_i·Tcontact), s.
  [[nodiscard]] double slot_contact_time_s(contact::SlotIndex s) const;
  /// Total contact capacity per epoch, seconds.
  [[nodiscard]] double epoch_contact_time_s() const;
  /// ζ_i(d): capacity probed in slot `s` at duty `d` (fluid), seconds.
  [[nodiscard]] double slot_capacity_s(contact::SlotIndex s, double duty) const;
  /// Knee duty Ton/T̄contact of the capacity-weighted mean (clamped to 1) —
  /// the duty SNIP-RH derives from its single learned length.
  [[nodiscard]] double knee() const;
  /// Knee duty of slot `s` (Ton/Tcontact_s, clamped to 1).
  [[nodiscard]] double slot_knee(contact::SlotIndex s) const;

  /// ζ for a uniform duty across the whole epoch (SNIP-AT's shape).
  [[nodiscard]] double capacity_at_uniform_duty(double duty) const;
  /// Smallest uniform duty with ζ(d) >= target; nullopt if unreachable.
  [[nodiscard]] std::optional<double> uniform_duty_for_capacity(
      double zeta_target_s) const;

  /// Evaluate an explicit per-slot duty plan (no gating).
  [[nodiscard]] PlanMetrics evaluate(const std::vector<double>& duties) const;

  /// SNIP-AT (Sec. IV): SNIP in all slots at one duty sized for the target,
  /// capped by the energy budget Φmax (duty <= Φmax/Tepoch).
  [[nodiscard]] ScheduleOutcome snip_at(double zeta_target_s,
                                        double phi_max_s) const;

  /// SNIP-RH (Sec. VI): SNIP only in masked slots at duty
  /// `duty_override.value_or(knee())`, walking slots in time order and
  /// stopping when the target is met (condition 2) or the budget is
  /// exhausted (condition 3). Fluid approximation: data is assumed
  /// available whenever probing is allowed.
  [[nodiscard]] ScheduleOutcome snip_rh(
      const std::vector<bool>& rush_mask, double zeta_target_s,
      double phi_max_s,
      std::optional<double> duty_override = std::nullopt) const;

  /// SNIP-OPT (Sec. V): step 1 maximizes ζ under Φ <= Φmax; if the optimum
  /// is below the target that plan is returned, otherwise step 2 minimizes
  /// Φ subject to ζ >= ζtarget.
  [[nodiscard]] ScheduleOutcome snip_opt(double zeta_target_s,
                                         double phi_max_s) const;

 private:
  contact::ArrivalProfile profile_;
  std::vector<double> tcontact_per_slot_s_;
  double tcontact_mean_s_{0.0};
  SnipParams params_;
};

}  // namespace snipr::model
