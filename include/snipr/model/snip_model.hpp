#pragma once

#include <optional>

#include "snipr/sim/distributions.hpp"
#include "snipr/sim/rng.hpp"

/// \file snip_model.hpp
/// Closed-form SNIP contact-probing model (Sec. III, eq. 1 of the paper).
///
/// SNIP wakes the sensor radio for Ton every cycle Tcycle = Ton/d and
/// broadcasts a beacon; the mobile radio is always on, so a contact is
/// probed as soon as a wakeup lands inside it. For a contact of fixed
/// length Tcontact:
///
///     Υ(d, Tcontact) = Tcontact·d / (2·Ton)          if Tcycle >= Tcontact
///                    = 1 − Ton / (2·d·Tcontact)       if Tcycle <  Tcontact
///
/// where Υ = E[Tprobed]/Tcontact is the probed fraction of contact
/// capacity. The two branches meet at the knee d = Ton/Tcontact with
/// Υ = 1/2; below the knee capacity is linear in d (constant per-unit cost
/// ρ), above it each extra duty buys less. SNIP-RH's duty-cycle choice
/// d_rh = Ton/T̄contact (Sec. VI-C) is exactly this knee.
///
/// Calibration note: the paper never states Ton; every published boundary
/// in its evaluation (see DESIGN.md) pins Ton = 20 ms, which is this
/// library's default.

namespace snipr::model {

/// SNIP radio parameters.
struct SnipParams {
  /// Radio-on time per probing wakeup (beacon + reply window), seconds.
  double ton_s{0.02};
};

/// Probed fraction Υ for fixed-length contacts (eq. 1). `duty` is clamped
/// to [0, 1]; returns 0 for non-positive duty.
[[nodiscard]] double upsilon_fixed(double duty, double tcontact_s,
                                   double ton_s);

/// The knee duty Ton/Tcontact, clamped to 1.
[[nodiscard]] double knee_duty(double tcontact_s, double ton_s);

/// Inverse of eq. 1: smallest duty achieving the given Υ, or nullopt when
/// unreachable at d = 1.
[[nodiscard]] std::optional<double> duty_for_upsilon_fixed(double upsilon,
                                                           double tcontact_s,
                                                           double ton_s);

/// Capacity-weighted probed fraction for exponentially distributed contact
/// lengths with the given mean (footnote 1 of the paper):
///   Ῡ = E[Tprobed]/E[Tcontact] with
///   E[Tprobed] = ∫ min-form over the exponential density (closed form).
[[nodiscard]] double upsilon_exponential(double duty, double mean_s,
                                         double ton_s);

/// Capacity-weighted probed fraction for an arbitrary length distribution,
/// by Monte-Carlo over `samples` draws (deterministic under a seeded rng).
[[nodiscard]] double upsilon_monte_carlo(double duty,
                                         const sim::Distribution& length,
                                         double ton_s, std::size_t samples,
                                         sim::Rng& rng);

/// Expected probed time for one contact of length `l` under cycle `tcycle`
/// (the primitive behind every Υ form above).
[[nodiscard]] double expected_probed_time(double l_s, double tcycle_s);

/// Per-unit probing cost ρ = Φ/ζ for a slot with arrival rate `rate` and
/// fixed contact length, at the given duty (Sec. VI-C): constant
/// 2·Ton/(f·Tcontact²) below the knee, increasing above it.
[[nodiscard]] double unit_cost(double duty, double rate_per_s,
                               double tcontact_s, double ton_s);

}  // namespace snipr::model
