#pragma once

#include <vector>

#include "snipr/model/epoch_model.hpp"

/// \file optimizer.hpp
/// Exact solver for the SNIP-OPT scheduling program (Sec. V of the paper).
///
/// Both steps are separable concave programs: per-slot capacity ζ_i(d_i)
/// is linear in d_i up to the knee d = Ton/Tcontact and strictly concave
/// above it, with marginal efficiency
///     e_i(d) = dζ_i/dΦ_i = f_i·Tcontact²/(2·Ton)   for d <= knee
///            = f_i·Ton/(2·d²)                      for d >  knee
/// continuous and non-increasing in d. Water-filling on the Lagrange
/// multiplier λ is therefore optimal: each slot takes the largest duty
/// whose marginal efficiency clears the bar, d(λ) = sqrt(f·Ton/(2λ))
/// clamped to [0, 1], and the slot whose *linear* segment sits exactly at
/// the bar absorbs the residual budget/target (any split inside [0, knee]
/// is equally efficient). Note the continuity at the knee means a
/// high-rate slot is pushed *above* its knee before a lower-rate slot's
/// linear segment is touched — e.g. in the road-side scenario the optimal
/// plan for ζtarget = 56 s raises the rush-hour duty to 0.012 rather than
/// activating off-peak slots. Equal-rate slots are filled at equal duty,
/// which matches the uniform rush-hour duty SNIP-RH uses.

namespace snipr::model {

struct WaterFillingResult {
  std::vector<double> duties;
  double zeta_s{0.0};
  double phi_s{0.0};
  /// For minimize_overhead: whether ζtarget is reachable at all (d_i = 1).
  bool feasible{true};
};

/// Step 1: maximize ζ subject to Φ = Σ t_i·d_i <= phi_max and d_i in [0,1].
[[nodiscard]] WaterFillingResult maximize_capacity(const EpochModel& model,
                                                   double phi_max_s);

/// Step 2: minimize Φ subject to ζ >= zeta_target and d_i in [0,1].
/// When the target exceeds the epoch optimum (all d_i = 1), returns that
/// plan with feasible = false.
[[nodiscard]] WaterFillingResult minimize_overhead(const EpochModel& model,
                                                   double zeta_target_s);

}  // namespace snipr::model
