#pragma once

/// \file rush_hour_gain.hpp
/// The motivating analysis of Sec. IV (Fig. 4 of the paper).
///
/// With fixed-length contacts, rush hours of total length Trh and arrival
/// frequency frh, off-hours of length Tother and frequency fother, and both
/// duties in the linear regime, probing only during rush hours costs
///   Φrh = Trh·d0 + Tother·fother·d0/frh
/// versus SNIP-AT's ΦAT = (Trh + Tother)·d0 for the same probed capacity,
/// giving the budget-independent ratio
///   ΦAT/Φrh = 1 / (x + (1 − x)/y),  x = Trh/Tepoch, y = frh/fother.

namespace snipr::model {

/// Energy gain ΦAT/Φrh of probing only in rush hours.
/// \param rush_fraction   x = Trh/Tepoch in (0, 1].
/// \param frequency_ratio y = frh/fother, >= 1.
[[nodiscard]] double rush_hour_gain(double rush_fraction,
                                    double frequency_ratio);

}  // namespace snipr::model
